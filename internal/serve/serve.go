// Package serve is the supervision plane over the simulated engines: the
// layer that turns the one-shot library entrypoints into a long-lived
// analytics service (ROADMAP item 2, DESIGN.md §8).
//
// An Instance owns one loaded graph Snapshot (internal/lcc) — the
// immutable per-graph half of the engine setup: partition, per-rank CSRs,
// offset pairs, resolve table, delegation replica — and serves queries
// against it. Every run gets a fresh communicator, clocks and caches, so
// queries share the snapshot and nothing else; results are bit-identical
// to the corresponding one-shot lcc.Run.
//
// The instance moves through loading → ready → busy → unhealthy → exited,
// plus the parked state (snapshot evicted, config retained) under a
// per-instance lock. Runs are supervised end to end:
//
//   - Deadlines and cancellation: the run context threads through
//     rma.Comm.RunCtx into the scheduler; ranks observe cancellation at
//     their issue-point checkpoints and barrier waits and unwind cleanly.
//     A canceled run returns an error wrapping sched.ErrRunCanceled (and
//     context.DeadlineExceeded when a deadline caused it) and the
//     instance returns to ready — cancellation discards the run, never
//     the instance.
//   - Panic isolation: an engine-goroutine panic is converted into a
//     *sched.PanicError carrying the rank and stack. The instance flips
//     to unhealthy, its snapshot is discarded (Reload rebuilds it), the
//     per-rank scratch state is repooled by the engine's deferred close,
//     and the process lives.
//   - Admission control and queueing: at most Config.MaxConcurrent runs
//     execute; with Config.QueueDepth > 0 overflow parks in a bounded
//     priority queue (queue.go) instead of bouncing, and only overflow
//     past the queue bound returns ErrBusy.
//   - Parking: an idle instance's snapshot can be evicted (Park) under a
//     supervisor memory budget; the instance transparently rebuilds it on
//     the next query. A parked instance costs configuration bytes, not
//     graph bytes.
//
// A Supervisor manages named instances, enforces the global memory budget
// via LRU parking, and — when given a ManifestStore — persists each
// instance's manifest so a daemon restart (even kill -9) recovers the
// fleet. It is the backing store of the lccd server (cmd/lccd).
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lcc"
	"repro/internal/part"
	"repro/internal/sched"
)

// State is the lifecycle state of an Instance. Transitions happen under
// the instance lock; every edge not drawn below is rejected with a typed
// error rather than racing:
//
//	loading → ready      (Start/Reload succeeds)
//	loading → unhealthy  (load fails)
//	ready   ⇄ busy       (run admitted / last run drains)
//	busy    → unhealthy  (a run panics, or the watchdog detects a stall)
//	unhealthy → loading  (Reload)
//	ready   → parked     (Park: snapshot evicted, config retained)
//	parked  → loading    (next query or Reload rebuilds the snapshot)
//	ready   → quarantined (scrub checksum mismatch: snapshot discarded)
//	quarantined → loading (the scrubber auto-reloads from the source)
//	any     → exited     (Stop; terminal)
type State int32

const (
	StateLoading State = iota
	StateReady
	StateBusy
	StateUnhealthy
	StateExited
	StateParked
	StateQuarantined
)

func (s State) String() string {
	switch s {
	case StateLoading:
		return "loading"
	case StateReady:
		return "ready"
	case StateBusy:
		return "busy"
	case StateUnhealthy:
		return "unhealthy"
	case StateExited:
		return "exited"
	case StateParked:
		return "parked"
	case StateQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// Typed lifecycle errors. Handlers map them to protocol statuses; tests
// assert transition edges against them with errors.Is.
var (
	// ErrAlreadyRunning rejects a second Start on a started instance (or
	// a Supervisor.Load under a name that is still live).
	ErrAlreadyRunning = errors.New("serve: instance already started")
	// ErrInstanceExited rejects any operation on a stopped instance.
	ErrInstanceExited = errors.New("serve: instance exited")
	// ErrNotReady rejects runs while the instance is still loading.
	ErrNotReady = errors.New("serve: instance not ready")
	// ErrUnhealthy rejects runs after a panic flipped the instance; a
	// Reload restores service.
	ErrUnhealthy = errors.New("serve: instance unhealthy")
	// ErrBusy is the admission-control overflow: MaxConcurrent runs are
	// in flight and the admission queue (if any) is full.
	ErrBusy = errors.New("serve: instance busy")
	// ErrQueueTimeout rejects a queued run whose deadline-in-queue
	// expired before a slot freed; see QueueTimeoutError for the wait.
	ErrQueueTimeout = errors.New("serve: queue deadline expired")
	// ErrUnknownInstance is returned by the Supervisor for names it does
	// not hold.
	ErrUnknownInstance = errors.New("serve: unknown instance")
)

// Config describes what an Instance loads and how it admits runs.
type Config struct {
	// Dataset names a registered dataset (gen.Names); used when Graph is
	// nil.
	Dataset string
	// Graph, when non-nil, is served directly instead of loading Dataset.
	// Direct-graph instances are not durable: they cannot be rebuilt from
	// a manifest, so the supervisor neither persists nor parks them.
	Graph *graph.Graph

	// Ranks, Scheme and DelegateBytes pin the snapshot's distribution
	// (lcc.NewSnapshot); queries inherit them regardless of their own
	// Options. Ranks 0 selects 1.
	Ranks         int
	Scheme        part.Scheme
	DelegateBytes int

	// Storage selects the host-side representation of the snapshot's
	// per-rank adjacency plane (lcc.StorageMode); MemBudgetBytes is the
	// StorageAuto budget. Host-side only — results are bit-identical
	// across modes (DESIGN.md §9).
	Storage        lcc.StorageMode
	MemBudgetBytes int64

	// MaxConcurrent bounds executing runs; 0 selects 1.
	MaxConcurrent int
	// QueueDepth bounds the admission queue holding runs past
	// MaxConcurrent. 0 disables queueing: overflow returns ErrBusy
	// immediately, the pre-queue behavior.
	QueueDepth int
	// DefaultTimeout applies to runs whose Query sets none; 0 = no
	// deadline.
	DefaultTimeout time.Duration
	// StallTimeout arms the run watchdog: a run whose progress counter
	// (sched.Progress — checkpoint ticks plus barrier generations) does
	// not move for this long is force-canceled through the scheduler's
	// abort path, the instance flips unhealthy, and the run fails with a
	// typed *StallError carrying per-rank progress and worker stacks
	// (watchdog.go). 0 disables the watchdog. Distinct from
	// DefaultTimeout: a deadline bounds total runtime, the stall timeout
	// bounds time *without forward progress* — a big query on a loaded
	// host can legitimately exceed any fixed deadline while never
	// stalling.
	StallTimeout time.Duration
}

// Counters aggregates an instance's served-run outcomes.
type Counters struct {
	Served   int64 // runs completed with results
	Canceled int64 // runs unwound by cancellation or deadline (queued or executing)
	Panicked int64 // runs that died on an engine panic
	Failed   int64 // runs that returned any other error
	Rejected int64 // admissions refused (ErrBusy overflow or a queue fence)
	TimedOut int64 // queued runs whose deadline-in-queue expired
	Stalled  int64 // runs the watchdog force-canceled for lack of progress
}

// useTick is the global recency clock behind LRU parking: every admission
// stamps its instance, and the supervisor evicts the smallest stamp.
var useTick atomic.Uint64

// Instance is one loaded graph serving queries. Create with NewInstance,
// bring up with Start; all methods are safe for concurrent use.
type Instance struct {
	name string
	cfg  Config

	// onResident, when set (by the Supervisor, before Start), observes
	// every successful snapshot load — initial, Reload and unpark — so
	// the global memory budget can be (re-)enforced. Called outside the
	// instance lock.
	onResident func(*Instance)

	mu        sync.Mutex
	cond      *sync.Cond // signaled whenever active drops or state changes
	state     State
	started   bool
	everReady bool // true once a load has succeeded; gates wait-vs-reject on loading
	active    int
	queue     waiterQueue
	seq       uint64 // admission sequence; FIFO tiebreak within a priority
	lastUsed  uint64 // useTick stamp of the latest admission or load
	snap      *lcc.Snapshot
	failure   error // what flipped unhealthy (load error or *sched.PanicError)
	ctr       Counters
}

// NewInstance creates an instance in the loading state. Start loads it.
func NewInstance(name string, cfg Config) *Instance {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.Ranks == 0 {
		cfg.Ranks = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	inst := &Instance{name: name, cfg: cfg, state: StateLoading}
	inst.cond = sync.NewCond(&inst.mu)
	return inst
}

// newParkedInstance creates an instance directly in the parked state — the
// lazy recovery path: the manifest proves a load once succeeded, so the
// first query (or an explicit Reload) rebuilds the snapshot on demand.
func newParkedInstance(name string, cfg Config) *Instance {
	inst := NewInstance(name, cfg)
	inst.started = true
	inst.everReady = true
	inst.state = StateParked
	return inst
}

// Name returns the instance name.
func (inst *Instance) Name() string { return inst.name }

// State returns the current lifecycle state.
func (inst *Instance) State() State {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.state
}

// Failure returns the error that flipped the instance unhealthy, nil when
// healthy.
func (inst *Instance) Failure() error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.failure
}

// Counters returns a snapshot of the run counters.
func (inst *Instance) Counters() Counters {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.ctr
}

// MemBytes reports the resident host bytes of the instance's snapshot
// adjacency plane — the quantity the supervisor's memory budget governs.
// A parked (or not-yet-loaded) instance reports 0.
func (inst *Instance) MemBytes() int64 {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.snap == nil {
		return 0
	}
	return inst.snap.LocalBytes()
}

// touchLocked stamps the instance as most recently used. Caller holds mu.
func (inst *Instance) touchLocked() { inst.lastUsed = useTick.Add(1) }

// Start loads the instance's graph and snapshot and moves it to ready. A
// second Start returns ErrAlreadyRunning; Start after Stop returns
// ErrInstanceExited. On a load failure the instance is unhealthy with the
// cause recorded.
func (inst *Instance) Start() error {
	inst.mu.Lock()
	if inst.state == StateExited {
		inst.mu.Unlock()
		return ErrInstanceExited
	}
	if inst.started {
		inst.mu.Unlock()
		return ErrAlreadyRunning
	}
	inst.started = true
	inst.mu.Unlock()
	return inst.loadAndNote()
}

// loadAndNote is load plus the residency hook: a successful load may push
// total resident bytes past the supervisor's budget, so the supervisor
// gets to park someone (outside the instance lock — the hook may park
// *other* instances, never this one).
func (inst *Instance) loadAndNote() error {
	if err := inst.load(); err != nil {
		return err
	}
	if inst.onResident != nil {
		inst.onResident(inst)
	}
	return nil
}

// load builds the snapshot outside the lock and installs it under it.
func (inst *Instance) load() error {
	var g graph.Store = inst.cfg.Graph
	var err error
	if inst.cfg.Graph == nil {
		g, err = gen.Load(inst.cfg.Dataset)
	}
	var snap *lcc.Snapshot
	if err == nil {
		snap, err = lcc.NewSnapshotOpts(g, lcc.SnapshotOptions{
			Ranks:          inst.cfg.Ranks,
			Scheme:         inst.cfg.Scheme,
			DelegateBytes:  inst.cfg.DelegateBytes,
			Storage:        inst.cfg.Storage,
			MemBudgetBytes: inst.cfg.MemBudgetBytes,
		})
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.state == StateExited {
		// Stopped while loading: stay exited, discard the work.
		return ErrInstanceExited
	}
	if err != nil {
		inst.state = StateUnhealthy
		inst.failure = err
		inst.flushQueueLocked(fmt.Errorf("%w (cause: %v)", ErrUnhealthy, err))
		inst.cond.Broadcast()
		return err
	}
	inst.snap, inst.failure = snap, nil
	inst.state = StateReady
	inst.everReady = true
	inst.touchLocked()
	inst.cond.Broadcast()
	return nil
}

// Reload rebuilds the snapshot and restores service — the recovery path
// out of unhealthy and the eager path out of parked. It refuses while
// runs are in flight or queued (ErrBusy), before Start (ErrNotReady) and
// after Stop (ErrInstanceExited).
func (inst *Instance) Reload() error {
	inst.mu.Lock()
	switch {
	case inst.state == StateExited:
		inst.mu.Unlock()
		return ErrInstanceExited
	case !inst.started:
		inst.mu.Unlock()
		return ErrNotReady
	case inst.active > 0 || inst.queue.Len() > 0:
		inst.mu.Unlock()
		return ErrBusy
	}
	inst.state = StateLoading
	inst.snap = nil
	inst.mu.Unlock()
	return inst.loadAndNote()
}

// Park evicts the snapshot of an idle instance while keeping it
// registered and serveable: the state flips to parked, the snapshot is
// released to the collector, and the next query (or Reload) transparently
// rebuilds it from the instance config via the dataset registry and its
// disk cache. Busy or queued instances refuse with ErrBusy — parking
// never cancels work — and only a ready instance parks (ErrNotReady
// otherwise). Parking an already parked instance is a no-op.
func (inst *Instance) Park() error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	switch {
	case inst.state == StateExited:
		return ErrInstanceExited
	case inst.state == StateParked:
		return nil
	case inst.state == StateBusy || inst.active > 0 || inst.queue.Len() > 0:
		return ErrBusy
	case inst.state != StateReady:
		return ErrNotReady
	}
	inst.state = StateParked
	inst.snap = nil
	inst.cond.Broadcast()
	return nil
}

// Stop moves the instance to the terminal exited state. New runs are
// rejected with ErrInstanceExited, queued runs are fenced out with the
// same error before in-flight runs drain; runs already executing complete
// against the snapshot they captured (Quiesce waits for them). A second
// Stop returns ErrInstanceExited.
func (inst *Instance) Stop() error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.state == StateExited {
		return ErrInstanceExited
	}
	inst.state = StateExited
	inst.snap = nil
	inst.flushQueueLocked(ErrInstanceExited)
	inst.cond.Broadcast()
	return nil
}

// Quiesce blocks until no run is in flight or queued, or ctx expires —
// the drain half of a graceful shutdown (call Stop first to fence new
// admissions and flush the queue).
func (inst *Instance) Quiesce(ctx context.Context) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			inst.mu.Lock()
			inst.cond.Broadcast()
			inst.mu.Unlock()
		case <-done:
		}
	}()
	inst.mu.Lock()
	defer inst.mu.Unlock()
	for (inst.active > 0 || inst.queue.Len() > 0) && ctx.Err() == nil {
		inst.cond.Wait()
	}
	return ctx.Err()
}

// Query selects the engine and per-run options of one supervised run. The
// snapshot's distribution (ranks, scheme, delegation) overrides the
// corresponding Options fields; method, caching, workers, charge plane
// and faults belong to the query.
type Query struct {
	// Engine is "lcc" (default) or "jaccard".
	Engine string
	// Options are the engine options for this run.
	Options lcc.Options
	// Timeout bounds the run; 0 applies the instance default, negative
	// disables the deadline even when the instance has one.
	Timeout time.Duration
	// Priority orders queued admissions: higher runs first, FIFO within
	// a priority. Ignored when a slot is free or queueing is off.
	Priority int
	// QueueTimeout bounds the time this run may wait in the admission
	// queue; past it the run fails with ErrQueueTimeout (the error is a
	// *QueueTimeoutError carrying the measured wait). 0 = wait as long
	// as the context allows.
	QueueTimeout time.Duration
}

// QueryResult summarizes one completed run.
type QueryResult struct {
	Engine    string        `json:"engine"`
	SimTime   float64       `json:"sim_time_ns"`
	Triangles int64         `json:"triangles,omitempty"`
	SumT      int64         `json:"sum_t,omitempty"`
	ScoreBits uint64        `json:"score_bits"` // checksum of the score vector (see ScoreBits)
	HitRate   float64       `json:"hit_rate,omitempty"`
	Wall      time.Duration `json:"wall_ns"`
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"` // time spent in the admission queue

	// Full engine results for in-process callers; elided on the wire.
	LCC     *lcc.Result        `json:"-"`
	Jaccard *lcc.JaccardResult `json:"-"`
}

// ScoreBits is the float bit pattern of the score sum — the same cheap
// whole-vector checksum the golden determinism tests pin.
func ScoreBits(scores []float64) uint64 {
	var s float64
	for _, x := range scores {
		s += x
	}
	return math.Float64bits(s)
}

// Run executes one supervised query. The error is one of the typed
// admission errors (ErrNotReady, ErrUnhealthy, ErrInstanceExited, ErrBusy
// on queue overflow, ErrQueueTimeout past the deadline-in-queue), a
// cancellation (wraps sched.ErrRunCanceled, or the context cause when
// canceled while queued), a panic conversion (*sched.PanicError — the
// instance is unhealthy afterwards), or an engine error (e.g.
// *fault.CrashError in fail-fast mode, which leaves the instance serving:
// a deterministic simulated crash is a run outcome, not an instance
// failure). A query against a parked instance transparently reloads the
// snapshot first.
func (inst *Instance) Run(ctx context.Context, q Query) (*QueryResult, error) {
	snap, queueWait, err := inst.admit(ctx, q)
	if err != nil {
		return nil, err
	}
	timeout := q.Timeout
	if timeout == 0 {
		timeout = inst.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if inst.cfg.StallTimeout > 0 {
		// Arm the watchdog: the run gets its own progress counter and a
		// cancel-with-cause wrapper; a detected stall cancels the context
		// with a *StallError cause, which the scheduler's unwind threads
		// back as this run's error (watchdog.go).
		prog := sched.NewProgress(snap.Ranks())
		q.Options.Progress = prog
		wctx, wcancel := context.WithCancelCause(ctx)
		ctx = wctx
		defer wcancel(nil)
		stop := inst.watchRun(wctx, wcancel, prog)
		defer stop()
	}
	start := time.Now()
	res, err := execute(ctx, snap, q)
	inst.finish(err)
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	res.QueueWait = queueWait
	return res, nil
}

// admit applies the lifecycle and admission checks and claims a run slot,
// unparking, waiting on an in-flight reload, or queueing as the state and
// config dictate. On success it returns the snapshot to run against and
// the time spent queued.
func (inst *Instance) admit(ctx context.Context, q Query) (*lcc.Snapshot, time.Duration, error) {
	inst.mu.Lock()
	for {
		switch inst.state {
		case StateParked:
			// Transparent unpark: the first query flips the instance to
			// loading and rebuilds the snapshot; concurrent queries take
			// the loading branch below and wait for it.
			inst.state = StateLoading
			inst.mu.Unlock()
			if err := inst.loadAndNote(); err != nil {
				return nil, 0, err
			}
			inst.mu.Lock()
			continue
		case StateLoading:
			if !inst.everReady {
				// Initial load: rejecting is the contract (ErrNotReady);
				// only reloads of a previously serving instance are
				// waited out.
				inst.mu.Unlock()
				return nil, 0, ErrNotReady
			}
			inst.cond.Wait()
			continue
		case StateQuarantined:
			// The scrubber found corruption and its auto-reload is about
			// to rebuild the snapshot from the source: wait it out like a
			// reload in flight. If the reload fails the state flips
			// unhealthy and the woken waiter gets the typed error; queries
			// never observe the corrupted bits.
			inst.cond.Wait()
			continue
		case StateUnhealthy:
			err := fmt.Errorf("%w (cause: %v)", ErrUnhealthy, inst.failure)
			inst.mu.Unlock()
			return nil, 0, err
		case StateExited:
			inst.mu.Unlock()
			return nil, 0, ErrInstanceExited
		}
		// Ready or busy: claim a slot, queue, or reject.
		if inst.active < inst.cfg.MaxConcurrent {
			inst.active++
			inst.state = StateBusy
			inst.touchLocked()
			snap := inst.snap
			inst.mu.Unlock()
			return snap, 0, nil
		}
		if inst.cfg.QueueDepth <= 0 || inst.queue.Len() >= inst.cfg.QueueDepth {
			inst.ctr.Rejected++
			inst.mu.Unlock()
			return nil, 0, ErrBusy
		}
		out, err := inst.enqueueLocked(q, ctx.Done(), func() error { return context.Cause(ctx) })
		if err != nil {
			return nil, 0, err
		}
		return out.snap, out.wait, nil
	}
}

// finish releases the run slot and applies the outcome to the lifecycle:
// panics flip the instance unhealthy, discard the snapshot and fence the
// queue; every other outcome leaves it serving, granting freed slots to
// queued runs and returning to ready once the last in-flight run drains.
func (inst *Instance) finish(err error) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	inst.active--
	var pe *sched.PanicError
	var se *StallError
	switch {
	case err == nil:
		inst.ctr.Served++
	case errors.As(err, &se):
		// A watchdog stall is a cancellation mechanically (the run was
		// unwound through the abort path) but an instance failure
		// semantically: something in this process stopped making progress,
		// and the next run would inherit it. Checked before the canceled
		// class — a stall error wraps the cancellation sentinel.
		inst.ctr.Stalled++
		if inst.state == StateBusy {
			inst.state = StateUnhealthy
			inst.failure = err
			inst.snap = nil
			inst.flushQueueLocked(fmt.Errorf("%w (cause: %v)", ErrUnhealthy, err))
		}
	case errors.Is(err, sched.ErrRunCanceled):
		inst.ctr.Canceled++
	case errors.As(err, &pe):
		inst.ctr.Panicked++
		if inst.state == StateBusy {
			inst.state = StateUnhealthy
			inst.failure = err
			inst.snap = nil
			inst.flushQueueLocked(fmt.Errorf("%w (cause: %v)", ErrUnhealthy, err))
		}
	default:
		inst.ctr.Failed++
	}
	inst.grantLocked()
	if inst.state == StateBusy && inst.active == 0 {
		inst.state = StateReady
	}
	inst.cond.Broadcast()
}

// execute dispatches the query to its engine on the captured snapshot.
// Panic conversion happens below, in the scheduler: sched.Pool.RunCtx
// recovers rank-body panics into *sched.PanicError, so a misbehaving
// engine can fail this run but not the process.
func execute(ctx context.Context, snap *lcc.Snapshot, q Query) (*QueryResult, error) {
	switch q.Engine {
	case "", "lcc":
		res, err := snap.RunCtx(ctx, q.Options)
		if err != nil {
			return nil, err
		}
		return &QueryResult{
			Engine: "lcc", SimTime: res.SimTime,
			Triangles: res.Triangles, SumT: res.SumT,
			ScoreBits: ScoreBits(res.LCC), HitRate: res.HitRate(),
			LCC: res,
		}, nil
	case "jaccard":
		res, err := snap.RunJaccardCtx(ctx, q.Options)
		if err != nil {
			return nil, err
		}
		return &QueryResult{
			Engine: "jaccard", SimTime: res.SimTime,
			ScoreBits: ScoreBits(res.Scores),
			Jaccard:   res,
		}, nil
	default:
		return nil, fmt.Errorf("serve: unknown engine %q", q.Engine)
	}
}

// InstanceInfo is the ps/health view of one instance.
type InstanceInfo struct {
	Name     string   `json:"name"`
	Dataset  string   `json:"dataset,omitempty"`
	State    string   `json:"state"`
	Ranks    int      `json:"ranks"`
	Vertices int      `json:"vertices,omitempty"`
	Arcs     int64    `json:"arcs,omitempty"`
	Active   int      `json:"active"`
	Queued   int      `json:"queued"`
	MemBytes int64    `json:"mem_bytes,omitempty"`
	Failure  string   `json:"failure,omitempty"`
	Counters Counters `json:"counters"`
}

// Info reports the instance's current state and counters.
func (inst *Instance) Info() InstanceInfo {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	info := InstanceInfo{
		Name:     inst.name,
		Dataset:  inst.cfg.Dataset,
		State:    inst.state.String(),
		Ranks:    inst.cfg.Ranks,
		Active:   inst.active,
		Queued:   inst.queue.Len(),
		Counters: inst.ctr,
	}
	if inst.snap != nil {
		g := inst.snap.Graph()
		info.Vertices = g.NumVertices()
		info.Arcs = int64(g.NumArcs())
		info.MemBytes = inst.snap.LocalBytes()
	}
	if inst.failure != nil {
		info.Failure = inst.failure.Error()
	}
	return info
}

// residency reports the eviction-relevant view of the instance under its
// lock: whether a snapshot is resident, whether the instance is idle
// (parkable), its recency stamp and its resident bytes.
func (inst *Instance) residency() (resident, idle bool, lastUsed uint64, bytes int64) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.snap == nil {
		return false, false, inst.lastUsed, 0
	}
	idle = inst.state == StateReady && inst.active == 0 && inst.queue.Len() == 0
	return true, idle, inst.lastUsed, inst.snap.LocalBytes()
}
