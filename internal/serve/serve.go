// Package serve is the supervision plane over the simulated engines: the
// layer that turns the one-shot library entrypoints into a long-lived
// analytics service (ROADMAP item 2, DESIGN.md §8).
//
// An Instance owns one loaded graph Snapshot (internal/lcc) — the
// immutable per-graph half of the engine setup: partition, per-rank CSRs,
// offset pairs, resolve table, delegation replica — and serves queries
// against it. Every run gets a fresh communicator, clocks and caches, so
// queries share the snapshot and nothing else; results are bit-identical
// to the corresponding one-shot lcc.Run.
//
// The instance moves through loading → ready → busy → unhealthy → exited
// under a per-instance lock. Runs are supervised end to end:
//
//   - Deadlines and cancellation: the run context threads through
//     rma.Comm.RunCtx into the scheduler; ranks observe cancellation at
//     their issue-point checkpoints and barrier waits and unwind cleanly.
//     A canceled run returns an error wrapping sched.ErrRunCanceled (and
//     context.DeadlineExceeded when a deadline caused it) and the
//     instance returns to ready — cancellation discards the run, never
//     the instance.
//   - Panic isolation: an engine-goroutine panic is converted into a
//     *sched.PanicError carrying the rank and stack. The instance flips
//     to unhealthy, its snapshot is discarded (Reload rebuilds it), the
//     per-rank scratch state is repooled by the engine's deferred close,
//     and the process lives.
//   - Admission control: at most Config.MaxConcurrent runs are admitted
//     per instance; overflow returns ErrBusy immediately.
//
// A Supervisor manages named instances and is the backing store of the
// lccd server (cmd/lccd).
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lcc"
	"repro/internal/part"
	"repro/internal/sched"
)

// State is the lifecycle state of an Instance. Transitions happen under
// the instance lock; every edge not drawn below is rejected with a typed
// error rather than racing:
//
//	loading → ready      (Start/Reload succeeds)
//	loading → unhealthy  (load fails)
//	ready   ⇄ busy       (run admitted / last run drains)
//	busy    → unhealthy  (a run panics)
//	unhealthy → loading  (Reload)
//	any     → exited     (Stop; terminal)
type State int32

const (
	StateLoading State = iota
	StateReady
	StateBusy
	StateUnhealthy
	StateExited
)

func (s State) String() string {
	switch s {
	case StateLoading:
		return "loading"
	case StateReady:
		return "ready"
	case StateBusy:
		return "busy"
	case StateUnhealthy:
		return "unhealthy"
	case StateExited:
		return "exited"
	default:
		return "unknown"
	}
}

// Typed lifecycle errors. Handlers map them to protocol statuses; tests
// assert transition edges against them with errors.Is.
var (
	// ErrAlreadyRunning rejects a second Start on a started instance (or
	// a Supervisor.Load under a name that is still live).
	ErrAlreadyRunning = errors.New("serve: instance already started")
	// ErrInstanceExited rejects any operation on a stopped instance.
	ErrInstanceExited = errors.New("serve: instance exited")
	// ErrNotReady rejects runs while the instance is still loading.
	ErrNotReady = errors.New("serve: instance not ready")
	// ErrUnhealthy rejects runs after a panic flipped the instance; a
	// Reload restores service.
	ErrUnhealthy = errors.New("serve: instance unhealthy")
	// ErrBusy is the admission-control overflow: MaxConcurrent runs are
	// already in flight.
	ErrBusy = errors.New("serve: instance busy")
	// ErrUnknownInstance is returned by the Supervisor for names it does
	// not hold.
	ErrUnknownInstance = errors.New("serve: unknown instance")
)

// Config describes what an Instance loads and how it admits runs.
type Config struct {
	// Dataset names a registered dataset (gen.Names); used when Graph is
	// nil.
	Dataset string
	// Graph, when non-nil, is served directly instead of loading Dataset.
	Graph *graph.Graph

	// Ranks, Scheme and DelegateBytes pin the snapshot's distribution
	// (lcc.NewSnapshot); queries inherit them regardless of their own
	// Options. Ranks 0 selects 1.
	Ranks         int
	Scheme        part.Scheme
	DelegateBytes int

	// MaxConcurrent bounds admitted runs; 0 selects 1.
	MaxConcurrent int
	// DefaultTimeout applies to runs whose Query sets none; 0 = no
	// deadline.
	DefaultTimeout time.Duration
}

// Counters aggregates an instance's served-run outcomes.
type Counters struct {
	Served   int64 // runs completed with results
	Canceled int64 // runs unwound by cancellation or deadline
	Panicked int64 // runs that died on an engine panic
	Failed   int64 // runs that returned any other error
	Rejected int64 // admissions refused with ErrBusy
}

// Instance is one loaded graph serving queries. Create with NewInstance,
// bring up with Start; all methods are safe for concurrent use.
type Instance struct {
	name string
	cfg  Config

	mu      sync.Mutex
	cond    *sync.Cond // signaled whenever active drops or state changes
	state   State
	started bool
	active  int
	snap    *lcc.Snapshot
	failure error // what flipped unhealthy (load error or *sched.PanicError)
	ctr     Counters
}

// NewInstance creates an instance in the loading state. Start loads it.
func NewInstance(name string, cfg Config) *Instance {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.Ranks == 0 {
		cfg.Ranks = 1
	}
	inst := &Instance{name: name, cfg: cfg, state: StateLoading}
	inst.cond = sync.NewCond(&inst.mu)
	return inst
}

// Name returns the instance name.
func (inst *Instance) Name() string { return inst.name }

// State returns the current lifecycle state.
func (inst *Instance) State() State {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.state
}

// Failure returns the error that flipped the instance unhealthy, nil when
// healthy.
func (inst *Instance) Failure() error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.failure
}

// Counters returns a snapshot of the run counters.
func (inst *Instance) Counters() Counters {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.ctr
}

// Start loads the instance's graph and snapshot and moves it to ready. A
// second Start returns ErrAlreadyRunning; Start after Stop returns
// ErrInstanceExited. On a load failure the instance is unhealthy with the
// cause recorded.
func (inst *Instance) Start() error {
	inst.mu.Lock()
	if inst.state == StateExited {
		inst.mu.Unlock()
		return ErrInstanceExited
	}
	if inst.started {
		inst.mu.Unlock()
		return ErrAlreadyRunning
	}
	inst.started = true
	inst.mu.Unlock()
	return inst.load()
}

// load builds the snapshot outside the lock and installs it under it.
func (inst *Instance) load() error {
	g := inst.cfg.Graph
	var err error
	if g == nil {
		g, err = gen.Load(inst.cfg.Dataset)
	}
	var snap *lcc.Snapshot
	if err == nil {
		snap, err = lcc.NewSnapshot(g, inst.cfg.Ranks, inst.cfg.Scheme, inst.cfg.DelegateBytes)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.state == StateExited {
		// Stopped while loading: stay exited, discard the work.
		return ErrInstanceExited
	}
	if err != nil {
		inst.state = StateUnhealthy
		inst.failure = err
		inst.cond.Broadcast()
		return err
	}
	inst.snap, inst.failure = snap, nil
	inst.state = StateReady
	inst.cond.Broadcast()
	return nil
}

// Reload rebuilds the snapshot and restores service — the recovery path
// out of unhealthy. It refuses while runs are in flight (ErrBusy), before
// Start (ErrNotReady) and after Stop (ErrInstanceExited).
func (inst *Instance) Reload() error {
	inst.mu.Lock()
	switch {
	case inst.state == StateExited:
		inst.mu.Unlock()
		return ErrInstanceExited
	case !inst.started:
		inst.mu.Unlock()
		return ErrNotReady
	case inst.active > 0:
		inst.mu.Unlock()
		return ErrBusy
	}
	inst.state = StateLoading
	inst.snap = nil
	inst.mu.Unlock()
	return inst.load()
}

// Stop moves the instance to the terminal exited state. New runs are
// rejected with ErrInstanceExited; runs already in flight complete
// against the snapshot they captured (Quiesce waits for them). A second
// Stop returns ErrInstanceExited.
func (inst *Instance) Stop() error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.state == StateExited {
		return ErrInstanceExited
	}
	inst.state = StateExited
	inst.snap = nil
	inst.cond.Broadcast()
	return nil
}

// Quiesce blocks until no run is in flight or ctx expires — the drain
// half of a graceful shutdown (call Stop first to fence new admissions).
func (inst *Instance) Quiesce(ctx context.Context) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			inst.mu.Lock()
			inst.cond.Broadcast()
			inst.mu.Unlock()
		case <-done:
		}
	}()
	inst.mu.Lock()
	defer inst.mu.Unlock()
	for inst.active > 0 && ctx.Err() == nil {
		inst.cond.Wait()
	}
	return ctx.Err()
}

// Query selects the engine and per-run options of one supervised run. The
// snapshot's distribution (ranks, scheme, delegation) overrides the
// corresponding Options fields; method, caching, workers, charge plane
// and faults belong to the query.
type Query struct {
	// Engine is "lcc" (default) or "jaccard".
	Engine string
	// Options are the engine options for this run.
	Options lcc.Options
	// Timeout bounds the run; 0 applies the instance default, negative
	// disables the deadline even when the instance has one.
	Timeout time.Duration
}

// QueryResult summarizes one completed run.
type QueryResult struct {
	Engine    string        `json:"engine"`
	SimTime   float64       `json:"sim_time_ns"`
	Triangles int64         `json:"triangles,omitempty"`
	SumT      int64         `json:"sum_t,omitempty"`
	ScoreBits uint64        `json:"score_bits"` // checksum of the score vector (see ScoreBits)
	HitRate   float64       `json:"hit_rate,omitempty"`
	Wall      time.Duration `json:"wall_ns"`

	// Full engine results for in-process callers; elided on the wire.
	LCC     *lcc.Result        `json:"-"`
	Jaccard *lcc.JaccardResult `json:"-"`
}

// ScoreBits is the float bit pattern of the score sum — the same cheap
// whole-vector checksum the golden determinism tests pin.
func ScoreBits(scores []float64) uint64 {
	var s float64
	for _, x := range scores {
		s += x
	}
	return math.Float64bits(s)
}

// Run executes one supervised query. The error is one of the typed
// admission errors (ErrNotReady, ErrUnhealthy, ErrInstanceExited,
// ErrBusy), a cancellation (wraps sched.ErrRunCanceled), a panic
// conversion (*sched.PanicError — the instance is unhealthy afterwards),
// or an engine error (e.g. *fault.CrashError in fail-fast mode, which
// leaves the instance serving: a deterministic simulated crash is a run
// outcome, not an instance failure).
func (inst *Instance) Run(ctx context.Context, q Query) (*QueryResult, error) {
	snap, err := inst.admit()
	if err != nil {
		return nil, err
	}
	timeout := q.Timeout
	if timeout == 0 {
		timeout = inst.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := execute(ctx, snap, q)
	inst.finish(err)
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	return res, nil
}

// admit applies the lifecycle and admission checks and claims a run slot.
func (inst *Instance) admit() (*lcc.Snapshot, error) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	switch inst.state {
	case StateLoading:
		return nil, ErrNotReady
	case StateUnhealthy:
		return nil, fmt.Errorf("%w (cause: %v)", ErrUnhealthy, inst.failure)
	case StateExited:
		return nil, ErrInstanceExited
	}
	if inst.active >= inst.cfg.MaxConcurrent {
		inst.ctr.Rejected++
		return nil, ErrBusy
	}
	inst.active++
	inst.state = StateBusy
	return inst.snap, nil
}

// finish releases the run slot and applies the outcome to the lifecycle:
// panics flip the instance unhealthy and discard the snapshot; every
// other outcome leaves it serving, returning to ready once the last
// in-flight run drains.
func (inst *Instance) finish(err error) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	inst.active--
	var pe *sched.PanicError
	switch {
	case err == nil:
		inst.ctr.Served++
	case errors.Is(err, sched.ErrRunCanceled):
		inst.ctr.Canceled++
	case errors.As(err, &pe):
		inst.ctr.Panicked++
		if inst.state == StateBusy {
			inst.state = StateUnhealthy
			inst.failure = err
			inst.snap = nil
		}
	default:
		inst.ctr.Failed++
	}
	if inst.state == StateBusy && inst.active == 0 {
		inst.state = StateReady
	}
	inst.cond.Broadcast()
}

// execute dispatches the query to its engine on the captured snapshot.
// Panic conversion happens below, in the scheduler: sched.Pool.RunCtx
// recovers rank-body panics into *sched.PanicError, so a misbehaving
// engine can fail this run but not the process.
func execute(ctx context.Context, snap *lcc.Snapshot, q Query) (*QueryResult, error) {
	switch q.Engine {
	case "", "lcc":
		res, err := snap.RunCtx(ctx, q.Options)
		if err != nil {
			return nil, err
		}
		return &QueryResult{
			Engine: "lcc", SimTime: res.SimTime,
			Triangles: res.Triangles, SumT: res.SumT,
			ScoreBits: ScoreBits(res.LCC), HitRate: res.HitRate(),
			LCC: res,
		}, nil
	case "jaccard":
		res, err := snap.RunJaccardCtx(ctx, q.Options)
		if err != nil {
			return nil, err
		}
		return &QueryResult{
			Engine: "jaccard", SimTime: res.SimTime,
			ScoreBits: ScoreBits(res.Scores),
			Jaccard:   res,
		}, nil
	default:
		return nil, fmt.Errorf("serve: unknown engine %q", q.Engine)
	}
}

// InstanceInfo is the ps/health view of one instance.
type InstanceInfo struct {
	Name     string   `json:"name"`
	Dataset  string   `json:"dataset,omitempty"`
	State    string   `json:"state"`
	Ranks    int      `json:"ranks"`
	Vertices int      `json:"vertices,omitempty"`
	Arcs     int64    `json:"arcs,omitempty"`
	Active   int      `json:"active"`
	Failure  string   `json:"failure,omitempty"`
	Counters Counters `json:"counters"`
}

// Info reports the instance's current state and counters.
func (inst *Instance) Info() InstanceInfo {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	info := InstanceInfo{
		Name:     inst.name,
		Dataset:  inst.cfg.Dataset,
		State:    inst.state.String(),
		Ranks:    inst.cfg.Ranks,
		Active:   inst.active,
		Counters: inst.ctr,
	}
	if inst.snap != nil {
		g := inst.snap.Graph()
		info.Vertices = g.NumVertices()
		info.Arcs = int64(g.NumArcs())
	}
	if inst.failure != nil {
		info.Failure = inst.failure.Error()
	}
	return info
}
