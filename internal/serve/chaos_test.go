package serve_test

// In-process chaos: a seeded storm of loads, runs, cancels, corruptions,
// scrubs, parks and stops against one supervisor, safe under -race (the
// CI chaos lane runs it with -race). The daemon-level campaign — real
// process, real SIGKILL, real state dir — lives in cmd/lccd -chaos-smoke;
// this test covers the same invariants where the race detector can see
// them: every error is one of the typed classes, every successful run is
// bit-identical to the golden pins, and the Served counter agrees
// exactly with the successes observed (no lost or duplicated runs).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/serve"
)

// chaosSplitmix is the deterministic schedule stream; each goroutine
// derives its own from the campaign seed so -race interleavings change
// timing but never the op sequence a goroutine issues.
type chaosSplitmix struct{ s uint64 }

func (r *chaosSplitmix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	x := r.s
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (r *chaosSplitmix) intn(n int) int { return int(r.next() % uint64(n)) }

// typedChaosError reports whether err belongs to the typed vocabulary a
// chaos client may legitimately observe. Anything else is an invariant
// violation.
func typedChaosError(err error) bool {
	switch {
	case errors.Is(err, serve.ErrBusy),
		errors.Is(err, serve.ErrNotReady),
		errors.Is(err, serve.ErrUnhealthy),
		errors.Is(err, serve.ErrInstanceExited),
		errors.Is(err, serve.ErrUnknownInstance),
		errors.Is(err, serve.ErrAlreadyRunning),
		errors.Is(err, serve.ErrQueueTimeout),
		errors.Is(err, serve.ErrStalled),
		errors.Is(err, serve.ErrServerBusy),
		errors.Is(err, serve.ErrBrownout),
		errors.Is(err, sched.ErrRunCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return true
	}
	return false
}

// TestChaosSupervisorStorm is the in-process campaign: several client
// goroutines hammer a budgeted, run-capped supervisor with mixed
// traffic while a scrubber-style loop corrupts and sweeps. Short mode
// (the -race CI lane) runs a reduced op count.
func TestChaosSupervisorStorm(t *testing.T) {
	ops := 12
	if testing.Short() {
		ops = 6
	}
	sup := serve.NewSupervisor()
	sup.SetManifestStore(testStore(t))
	sup.SetRunCap(8)
	cfg := serve.Config{
		Dataset: "fb-sim", Ranks: 4, MaxConcurrent: 2, QueueDepth: 4,
		StallTimeout: 5 * time.Second,
	}
	inst, err := sup.Load("fb", cfg)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	golden, err := sup.Run(context.Background(), "fb", pullQuery(2))
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	assertPins(t, golden)

	// gate serializes corruption against traffic: corrupt-and-sweep holds
	// the write side until the scrub has caught (and healed) the damage,
	// so no client run is admitted onto a corrupted snapshot. This models
	// the scrub contract honestly — scrubbing guarantees detection before
	// the NEXT idle admission, not time travel for queries already racing
	// the bit flip.
	var (
		wg     sync.WaitGroup
		gate   sync.RWMutex
		okRuns atomic.Int64
	)
	servedBefore := inst.Counters().Served
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := &chaosSplitmix{s: uint64(g)*0x9E37 + 1}
			for i := 0; i < ops; i++ {
				switch rng.intn(6) {
				case 0, 1: // golden run on fb
					gate.RLock()
					res, err := sup.Run(context.Background(), "fb", pullQuery(1+rng.intn(4)))
					gate.RUnlock()
					if err != nil {
						if !typedChaosError(err) {
							t.Errorf("run: untyped error %v", err)
						}
						continue
					}
					okRuns.Add(1)
					if res.Triangles != pinTriangles || res.ScoreBits != pinLCCBits || res.SumT != pinSumT {
						t.Errorf("run bits drifted: %+v", res)
					}
				case 2: // canceled run
					gate.RLock()
					ctx, cancel := context.WithCancel(context.Background())
					go func() {
						time.Sleep(time.Duration(rng.intn(3)) * time.Millisecond)
						cancel()
					}()
					res, err := sup.Run(ctx, "fb", pullQuery(2))
					cancel()
					gate.RUnlock()
					if err != nil {
						if !typedChaosError(err) {
							t.Errorf("canceled run: untyped error %v", err)
						}
						continue
					}
					okRuns.Add(1)
					if res.Triangles != pinTriangles {
						t.Errorf("raced-cancel run bits drifted: %+v", res)
					}
				case 3: // corrupt-and-sweep, exclusive with client traffic
					gate.Lock()
					section := []string{
						serve.SectionOffsets, serve.SectionAdjacency, serve.SectionResolve,
					}[rng.intn(3)]
					if err := inst.CorruptResident(rng.intn(4), section); err != nil {
						// Not ready/idle right now (e.g. unhealthy from a racing
						// failure path) — typed, and nothing to sweep.
						if !typedChaosError(err) {
							t.Errorf("corrupt: untyped error %v", err)
						}
						gate.Unlock()
						continue
					}
					// With the write side held the instance is idle, so the
					// very next sweep must detect and heal the damage.
					if q := sup.ScrubNow(); len(q) != 1 {
						t.Errorf("sweep after corruption quarantined %v, want exactly fb", q)
					}
					gate.Unlock()
				case 4: // churn a second instance
					_, err := sup.Load(fmt.Sprintf("side-%d", g), serve.Config{
						Dataset: "fb-sim", Ranks: 2, MaxConcurrent: 1,
					})
					if err != nil && !typedChaosError(err) {
						t.Errorf("side load: untyped error %v", err)
					}
					if err == nil {
						if err := sup.Stop(fmt.Sprintf("side-%d", g)); err != nil && !typedChaosError(err) {
							t.Errorf("side stop: untyped error %v", err)
						}
					}
				case 5: // observers
					_ = sup.List()
					_ = sup.ServerInfo()
					_ = sup.Healthy()
				}
			}
		}(g)
	}
	wg.Wait()

	// Settle: quiesce any stragglers, then the books must balance and the
	// plane must still serve golden bits.
	served := inst.Counters().Served - servedBefore
	if served != okRuns.Load() {
		t.Errorf("Served moved %d, clients saw %d successes — lost or duplicated runs", served, okRuns.Load())
	}
	// One final sweep pass in case the last op left corruption pending,
	// then the golden query must pin.
	for try := 0; try < 200; try++ {
		sup.ScrubNow()
		res, err := sup.Run(context.Background(), "fb", pullQuery(4))
		if err != nil {
			if !typedChaosError(err) {
				t.Fatalf("final run: untyped error %v", err)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		assertPins(t, res)
		return
	}
	t.Fatal("could not obtain a final golden result after the storm")
}
