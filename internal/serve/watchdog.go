package serve

// The run watchdog: detection and typed reporting of wedged runs.
//
// The cancellation plane (internal/sched) only works when ranks reach
// checkpoints — a rank stuck in host code (a deadlocked lock, a stuck
// syscall, a livelocked loop, the fault plane's wedge class) never polls
// again, so a deadline alone cannot unwind it promptly and an undeadlined
// run would hang the slot forever. The watchdog closes that gap from the
// outside: each supervised run (when Config.StallTimeout > 0) carries a
// sched.Progress counter that the substrate bumps at its masked
// checkpoint plants and barrier closes; a supervisor goroutine samples
// the total and, when it has not moved for StallTimeout, cancels the run
// context with a *StallError cause. The cancel releases every park —
// including the wedged rank's own WedgeUntilCanceled and the barrier
// waiters behind it — so the run unwinds through the existing abort
// machinery and the instance flips unhealthy with the diagnostic
// attached.
//
// Why a progress watchdog cannot false-positive at a barrier: a rank
// blocked at a rendezvous stops ticking, but the stragglers it waits for
// are still issuing operations — and they tick. The total only goes
// quiet when no rank anywhere is making progress, which is precisely the
// condition being diagnosed (sched/progress.go has the full argument).

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/sched"
)

// ErrStalled is the sentinel a watchdog-canceled run's error matches via
// errors.Is; the concrete *StallError carries the diagnostics.
var ErrStalled = errors.New("serve: run stalled")

// StallError is the watchdog's diagnostic: the run made no progress for
// Stall, with the per-rank progress counters frozen at the fire point and
// the full goroutine stack dump captured before the force-cancel —
// enough to tell a wedged rank (its tick counter stopped early) from a
// global livelock, and to find the stuck frame post-mortem.
type StallError struct {
	Instance string
	Stall    time.Duration          // time without progress when the watchdog fired
	Progress sched.ProgressSnapshot // per-rank ticks + barrier generations at fire time
	Stacks   []byte                 // runtime.Stack(all=true) captured before the cancel
}

func (e *StallError) Error() string {
	return fmt.Sprintf("serve: instance %q run stalled: no progress for %v (ticks %v, barriers %d)",
		e.Instance, e.Stall.Round(time.Millisecond), e.Progress.Ticks, e.Progress.Barriers)
}

// Is matches ErrStalled and — because a stall is delivered through the
// scheduler's cancellation plane — lets the error co-exist with the
// ErrRunCanceled chain without being mistaken for a caller cancel:
// handlers must check ErrStalled before ErrRunCanceled.
func (e *StallError) Is(target error) bool { return target == ErrStalled }

// watchRun starts the watchdog goroutine for one armed run and returns
// its stop function. The goroutine samples prog on a fraction of the
// stall timeout; when the total sits unchanged for a full StallTimeout it
// captures diagnostics and cancels the run context with the *StallError
// as cause. ctx.Done covers both the run finishing (the caller's
// deferred cancel) and any outer deadline.
func (inst *Instance) watchRun(ctx context.Context, cancel context.CancelCauseFunc, prog *sched.Progress) (stop func()) {
	stopC := make(chan struct{})
	stallAfter := inst.cfg.StallTimeout
	interval := stallAfter / 8
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		last := prog.Total()
		lastMove := time.Now()
		for {
			select {
			case <-stopC:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if cur := prog.Total(); cur != last {
					last, lastMove = cur, time.Now()
					continue
				}
				if quiet := time.Since(lastMove); quiet >= stallAfter {
					buf := make([]byte, 1<<20)
					buf = buf[:runtime.Stack(buf, true)]
					cancel(&StallError{
						Instance: inst.name,
						Stall:    quiet,
						Progress: prog.Snapshot(),
						Stacks:   buf,
					})
					return
				}
			}
		}
	}()
	return func() { close(stopC) }
}
