package serve_test

// Self-healing serving plane tests (DESIGN.md §10): the run watchdog
// (wedged runs force-canceled with typed diagnostics, golden bits after
// reload), integrity scrubbing (corrupt resident sections quarantined
// and auto-reloaded, golden bits afterwards), server-wide load shedding
// (run cap, memory brownout) and manifest crash-consistency.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/lcc"
	"repro/internal/serve"
)

// wedgeQuery is pullQuery plus a fault schedule that parks rank 0
// forever at its 40th issue point — the deterministic stand-in for a
// stuck syscall or deadlocked lock.
func wedgeQuery(workers int) serve.Query {
	q := pullQuery(workers)
	q.Options.Faults = &fault.Spec{Seed: 11, WedgeRank: 0, WedgeAtOp: 40}
	return q
}

// TestWatchdogStall wedges a run at Workers ∈ {1,4} and asserts the full
// watchdog contract: the run fails with a typed *StallError (matching
// ErrStalled, carrying per-rank progress and goroutine stacks), the
// instance flips unhealthy with the stall recorded, follow-up runs are
// fenced with ErrUnhealthy, and a Reload restores golden service.
func TestWatchdogStall(t *testing.T) {
	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			inst := serve.NewInstance("wd", serve.Config{
				Dataset: "fb-sim", Ranks: 4, StallTimeout: 150 * time.Millisecond,
			})
			if err := inst.Start(); err != nil {
				t.Fatalf("Start: %v", err)
			}
			_, err := inst.Run(context.Background(), wedgeQuery(w))
			if !errors.Is(err, serve.ErrStalled) {
				t.Fatalf("wedged run err = %v, want ErrStalled", err)
			}
			var se *serve.StallError
			if !errors.As(err, &se) {
				t.Fatalf("wedged run err = %v, want *StallError", err)
			}
			if se.Instance != "wd" {
				t.Errorf("StallError.Instance = %q, want wd", se.Instance)
			}
			if se.Stall < 150*time.Millisecond {
				t.Errorf("StallError.Stall = %v, want >= stall timeout", se.Stall)
			}
			if len(se.Progress.Ticks) != 4 {
				t.Errorf("progress ranks = %d, want 4", len(se.Progress.Ticks))
			}
			if len(se.Stacks) == 0 {
				t.Error("StallError.Stacks empty, want goroutine dump")
			}
			if !strings.Contains(string(se.Stacks), "goroutine") {
				t.Error("StallError.Stacks does not look like a stack dump")
			}
			if st := inst.State(); st != serve.StateUnhealthy {
				t.Fatalf("state after stall = %v, want unhealthy", st)
			}
			if f := inst.Failure(); !errors.Is(f, serve.ErrStalled) {
				t.Errorf("Failure = %v, want the stall", f)
			}
			if got := inst.Counters().Stalled; got != 1 {
				t.Errorf("Counters.Stalled = %d, want 1", got)
			}
			if _, err := inst.Run(context.Background(), pullQuery(w)); !errors.Is(err, serve.ErrUnhealthy) {
				t.Fatalf("run on stalled instance err = %v, want ErrUnhealthy", err)
			}
			if err := inst.Reload(); err != nil {
				t.Fatalf("Reload after stall: %v", err)
			}
			res, err := inst.Run(context.Background(), pullQuery(w))
			if err != nil {
				t.Fatalf("run after reload: %v", err)
			}
			assertPins(t, res)
		})
	}
}

// TestWatchdogSparesHealthyRuns pins the no-false-positive side: a
// normal full run under a tight-but-fair stall timeout completes with
// golden bits — barrier waits do not read as stalls, because the
// stragglers a barrier waits for keep ticking the progress counter.
func TestWatchdogSparesHealthyRuns(t *testing.T) {
	inst := serve.NewInstance("wd-ok", serve.Config{
		Dataset: "fb-sim", Ranks: 4, StallTimeout: 2 * time.Second,
	})
	if err := inst.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for _, w := range []int{1, 4} {
		res, err := inst.Run(context.Background(), pullQuery(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		assertPins(t, res)
	}
	if got := inst.Counters().Stalled; got != 0 {
		t.Fatalf("Counters.Stalled = %d, want 0", got)
	}
}

// TestScrubQuarantineReload corrupts each checksummed section in turn at
// Workers ∈ {1,4}: the scrub must detect exactly the damaged section,
// quarantine with a typed *ScrubError, auto-reload from the dataset
// source, and serve golden bits again — and the supervisor's sweep
// reports it all in the scrub stats.
func TestScrubQuarantineReload(t *testing.T) {
	sections := []struct {
		section  string
		rank     int
		wantRank int // rank recorded in the IntegrityError (-1 = resolve table)
	}{
		{serve.SectionOffsets, 1, 1},
		{serve.SectionAdjacency, 2, 2},
		{serve.SectionResolve, 0, -1},
	}
	for _, w := range []int{1, 4} {
		for _, tc := range sections {
			t.Run(fmt.Sprintf("workers=%d/%s", w, tc.section), func(t *testing.T) {
				sup := serve.NewSupervisor()
				inst, err := sup.Load("fb", serve.Config{Dataset: "fb-sim", Ranks: 4})
				if err != nil {
					t.Fatalf("load: %v", err)
				}
				res, err := sup.Run(context.Background(), "fb", pullQuery(w))
				if err != nil {
					t.Fatalf("pre-corruption run: %v", err)
				}
				assertPins(t, res)

				if err := inst.CorruptResident(tc.rank, tc.section); err != nil {
					t.Fatalf("CorruptResident: %v", err)
				}
				quarantined := sup.ScrubNow()
				if len(quarantined) != 1 || quarantined[0] != "fb" {
					t.Fatalf("ScrubNow quarantined %v, want [fb]", quarantined)
				}
				stats := sup.ScrubStats()
				if stats.Quarantines != 1 || stats.Sweeps != 1 || stats.ReloadFailed != 0 {
					t.Fatalf("scrub stats = %+v, want 1 sweep, 1 quarantine, 0 reload failures", stats)
				}
				// ScrubNow's auto-reload is synchronous: by the time the
				// sweep returns, the instance is serving a fresh snapshot.
				if st := inst.State(); st != serve.StateReady {
					t.Fatalf("state after scrub+reload = %v, want ready", st)
				}
				res, err = sup.Run(context.Background(), "fb", pullQuery(w))
				if err != nil {
					t.Fatalf("post-reload run: %v", err)
				}
				assertPins(t, res)
			})
		}
	}
}

// TestScrubErrorTyping drives Instance.Scrub directly to pin the error
// shape: *ScrubError matches ErrQuarantined and carries the
// *lcc.IntegrityError naming the corrupt rank and section.
func TestScrubErrorTyping(t *testing.T) {
	inst := fbInstance(t)
	if err := inst.CorruptResident(1, serve.SectionAdjacency); err != nil {
		t.Fatalf("CorruptResident: %v", err)
	}
	checked, se, err := inst.Scrub()
	if err != nil {
		t.Fatalf("Scrub reload: %v", err)
	}
	if !checked || se == nil {
		t.Fatalf("Scrub: checked=%v se=%v, want a detection", checked, se)
	}
	if !errors.Is(se, serve.ErrQuarantined) {
		t.Errorf("ScrubError does not match ErrQuarantined")
	}
	var ie *lcc.IntegrityError
	if !errors.As(se, &ie) {
		t.Fatalf("ScrubError does not unwrap to *lcc.IntegrityError")
	}
	if ie.Rank != 1 || ie.Section != serve.SectionAdjacency {
		t.Errorf("IntegrityError = rank %d section %q, want rank 1 adjacency", ie.Rank, ie.Section)
	}
	if ie.Want == ie.Got {
		t.Errorf("IntegrityError Want == Got (%#x), want a mismatch", ie.Want)
	}
}

// TestScrubCompressedStorage runs the quarantine→reload cycle against
// the compressed adjacency plane, whose checksum covers the varint data
// stream and both offset tables.
func TestScrubCompressedStorage(t *testing.T) {
	sup := serve.NewSupervisor()
	inst, err := sup.Load("fbz", serve.Config{
		Dataset: "fb-sim", Ranks: 4, Storage: lcc.StorageCompressed,
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := inst.CorruptResident(3, serve.SectionAdjacency); err != nil {
		t.Fatalf("CorruptResident: %v", err)
	}
	if q := sup.ScrubNow(); len(q) != 1 {
		t.Fatalf("ScrubNow quarantined %v, want [fbz]", q)
	}
	res, err := sup.Run(context.Background(), "fbz", pullQuery(4))
	if err != nil {
		t.Fatalf("post-reload run: %v", err)
	}
	assertPins(t, res)
}

// TestScrubSkipsBusy pins the sweep's safety protocol: a busy instance
// is never verified or quarantined mid-run — the corruption waits for
// the next idle sweep, which then catches it.
func TestScrubSkipsBusy(t *testing.T) {
	sup := serve.NewSupervisor()
	inst, err := sup.Load("fb", serve.Config{Dataset: "fb-sim", Ranks: 4, MaxConcurrent: 1})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := inst.CorruptResident(0, serve.SectionOffsets); err != nil {
		t.Fatalf("CorruptResident: %v", err)
	}
	release, join := occupy(t, inst, 2)
	if q := sup.ScrubNow(); len(q) != 0 {
		t.Fatalf("busy sweep quarantined %v, want none", q)
	}
	if got := sup.ScrubStats().Verified; got != 0 {
		t.Fatalf("busy sweep verified %d instances, want 0 (skipped)", got)
	}
	close(release)
	join()
	if q := sup.ScrubNow(); len(q) != 1 {
		t.Fatalf("idle sweep quarantined %v, want [fb]", q)
	}
	res, err := sup.Run(context.Background(), "fb", pullQuery(2))
	if err != nil {
		t.Fatalf("post-reload run: %v", err)
	}
	assertPins(t, res)
}

// TestServerRunCap pins the fleet-wide shed: past SetRunCap concurrent
// supervised runs, Supervisor.Run rejects with a *ShedError matching
// ErrServerBusy (distinct from the per-instance ErrBusy) carrying the
// admission numbers, and a freed slot restores service.
func TestServerRunCap(t *testing.T) {
	sup := serve.NewSupervisor()
	inst, err := sup.Load("fb", serve.Config{Dataset: "fb-sim", Ranks: 4, MaxConcurrent: 2})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	sup.SetRunCap(1)

	q, entered, release := blockingQuery(2)
	done := make(chan error, 1)
	go func() {
		_, err := sup.Run(context.Background(), "fb", q)
		done <- err
	}()
	<-entered

	_, err = sup.Run(context.Background(), "fb", pullQuery(2))
	if !errors.Is(err, serve.ErrServerBusy) {
		t.Fatalf("capped run err = %v, want ErrServerBusy", err)
	}
	if errors.Is(err, serve.ErrBusy) {
		t.Error("server-cap shed must not match the per-instance ErrBusy")
	}
	var she *serve.ShedError
	if !errors.As(err, &she) {
		t.Fatalf("capped run err = %v, want *ShedError", err)
	}
	if she.Reason != "run-cap" || she.ActiveRuns != 1 || she.RunCap != 1 {
		t.Errorf("ShedError = %+v, want run-cap 1/1", she)
	}
	// The cap binds the supervisor surface only: the instance still has a
	// free slot (MaxConcurrent 2), so a direct instance run proves the
	// shed happened above per-instance admission, not inside it.
	if _, err := inst.Run(context.Background(), pullQuery(2)); err != nil {
		t.Fatalf("direct instance run under server cap: %v", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocking run: %v", err)
	}
	res, err := sup.Run(context.Background(), "fb", pullQuery(2))
	if err != nil {
		t.Fatalf("run after slot freed: %v", err)
	}
	assertPins(t, res)
	if got := sup.ServerInfo().ShedRuns; got != 1 {
		t.Errorf("ServerInfo.ShedRuns = %d, want 1", got)
	}
}

// TestBrownoutSheddingTable is the brownout rejection table: with the
// fleet over budget and nothing evictable, loads shed typed; runs keep
// queueing and serving; and once pressure drains, parking resumes and
// loads are admitted again.
func TestBrownoutSheddingTable(t *testing.T) {
	sup := serve.NewSupervisor()
	cfg := fbConfig()
	cfg.MaxConcurrent = 1
	a, err := sup.Load("a", cfg)
	if err != nil {
		t.Fatalf("load a: %v", err)
	}
	release, join := occupy(t, a, 2)
	sup.SetMemBudget(1)

	// Load: shed, typed, with the numbers.
	_, err = sup.Load("b", fbConfig())
	if !errors.Is(err, serve.ErrBrownout) {
		t.Fatalf("load under brownout err = %v, want ErrBrownout", err)
	}
	var she *serve.ShedError
	if !errors.As(err, &she) {
		t.Fatalf("load under brownout err = %v, want *ShedError", err)
	}
	if she.Reason != "memory-brownout" || she.BudgetBytes != 1 || she.ResidentBytes <= 1 {
		t.Errorf("ShedError = %+v, want memory-brownout with resident > budget 1", she)
	}
	if _, err := sup.Get("b"); !errors.Is(err, serve.ErrUnknownInstance) {
		t.Error("shed load left instance b registered")
	}

	// Run: NOT shed — queues behind the held slot and completes golden.
	queued := make(chan error, 1)
	var queuedRes *serve.QueryResult
	go func() {
		res, err := sup.Run(context.Background(), "a", pullQuery(2))
		queuedRes = res
		queued <- err
	}()
	waitQueued(t, a, 1)

	close(release)
	join()
	if err := <-queued; err != nil {
		t.Fatalf("queued run under brownout: %v", err)
	}
	assertPins(t, queuedRes)

	// Pressure drained: a is idle and evictable now, so the next load
	// parks it and is admitted.
	b, err := sup.Load("b", fbConfig())
	if err != nil {
		t.Fatalf("load b after drain: %v", err)
	}
	if st := a.State(); st != serve.StateParked {
		t.Errorf("a after admitted load = %v, want parked", st)
	}
	if st := b.State(); st != serve.StateReady {
		t.Errorf("b after admitted load = %v, want ready", st)
	}
	if got := sup.ServerInfo().ShedLoads; got != 1 {
		t.Errorf("ServerInfo.ShedLoads = %d, want 1", got)
	}
}

// TestManifestCrashConsistency pins the atomic-write protocol's
// observable half: a completed Save leaves no temp files behind, torn
// temp files from a crashed writer are invisible to LoadAll, a corrupt
// committed manifest is skipped loudly rather than trusted, and an
// overwrite is the new content or the old — never a hybrid.
func TestManifestCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	ms, err := serve.NewManifestStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &serve.Manifest{Name: "fb", Dataset: "fb-sim", Ranks: 4, QueueDepth: 2}
	if err := ms.Save(m); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// No temp debris after a clean save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("Save left temp file %q behind", e.Name())
		}
	}

	// A crashed writer's torn temp file and a corrupt committed manifest:
	// the former is invisible (wrong suffix), the latter skipped loudly.
	torn := filepath.Join(dir, filepath.Base(ms.Path("fb"))+".tmp123456")
	if err := os.WriteFile(torn, []byte("torn half-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk-0000000000000000.lcm"), []byte("not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	manifests, skipped := ms.LoadAll()
	if len(manifests) != 1 || manifests[0].Name != "fb" || manifests[0].QueueDepth != 2 {
		t.Fatalf("LoadAll = %+v, want just fb with QueueDepth 2", manifests)
	}
	if len(skipped) != 1 || !errors.Is(skipped[0], serve.ErrManifestCorrupt) {
		t.Fatalf("skipped = %v, want one corrupt-manifest error", skipped)
	}

	// Overwrite: the committed file is the new content, atomically.
	m.QueueDepth = 8
	if err := ms.Save(m); err != nil {
		t.Fatalf("overwrite Save: %v", err)
	}
	manifests, _ = ms.LoadAll()
	if len(manifests) != 1 || manifests[0].QueueDepth != 8 {
		t.Fatalf("LoadAll after overwrite = %+v, want QueueDepth 8", manifests)
	}
}
