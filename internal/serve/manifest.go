package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/lcc"
	"repro/internal/part"
)

// Manifest is the durable record of one loaded instance: everything the
// daemon needs to rebuild the instance after a crash-stop of the *process*
// — dataset spec, distribution, storage mode, memory budget and admission
// config. It deliberately holds no graph bytes: the dataset registry (and
// its disk cache) is the source of truth for data; the manifest is the
// source of truth for *which instances exist and how they are configured*.
//
// On disk a manifest is a small framed file (DESIGN.md §8):
//
//	magic    [8]byte  "LCCMANIF"
//	version  uint32   (1)
//	length   uint32   payload byte count
//	payload  JSON-encoded Manifest
//	crc      uint32   CRC-32C (Castagnoli) of the payload
//
// — the same checksum discipline as the §9 binary graph container, scaled
// down to a config record. Writes are atomic (tmp + rename), so a crash
// mid-save never leaves a torn manifest; reads verify magic, version,
// framing and checksum and fail with a typed *ManifestError. A corrupt or
// version-skewed manifest is *skipped loudly* during recovery, never
// fatal: losing one instance's config must not take down the fleet.
type Manifest struct {
	Name             string `json:"name"`
	Dataset          string `json:"dataset"`
	Ranks            int    `json:"ranks"`
	Scheme           string `json:"scheme"`
	DelegateBytes    int    `json:"delegate_bytes,omitempty"`
	Storage          string `json:"storage,omitempty"`
	MemBudgetBytes   int64  `json:"mem_budget_bytes,omitempty"`
	MaxConcurrent    int    `json:"max_concurrent,omitempty"`
	QueueDepth       int    `json:"queue_depth,omitempty"`
	DefaultTimeoutMS int64  `json:"default_timeout_ms,omitempty"`
	StallTimeoutMS   int64  `json:"stall_timeout_ms,omitempty"`
}

var manifestMagic = [8]byte{'L', 'C', 'C', 'M', 'A', 'N', 'I', 'F'}

// ManifestVersion is the current manifest format version. Files carrying
// any other version are skipped with ErrManifestVersion during recovery.
const ManifestVersion = 1

var manifestCRC = crc32.MakeTable(crc32.Castagnoli)

// Typed manifest failure classes, wrapped by *ManifestError.
var (
	// ErrManifestCorrupt marks a manifest that failed a framing, magic or
	// checksum check.
	ErrManifestCorrupt = errors.New("serve: corrupt manifest")
	// ErrManifestVersion marks a manifest written by a different format
	// version.
	ErrManifestVersion = errors.New("serve: manifest version mismatch")
)

// ManifestError reports one unreadable manifest file. Recovery collects
// them instead of failing: errors.Is sees the wrapped class
// (ErrManifestCorrupt / ErrManifestVersion).
type ManifestError struct {
	Path   string
	Reason string
	Err    error // ErrManifestCorrupt or ErrManifestVersion
}

func (e *ManifestError) Error() string {
	return fmt.Sprintf("serve: manifest %s: %s", filepath.Base(e.Path), e.Reason)
}

func (e *ManifestError) Unwrap() error { return e.Err }

// config converts the manifest back into the instance Config it was taken
// from. Unknown scheme or storage names fail typed — a manifest written by
// a future version with new enum values must not silently load under the
// wrong distribution.
func (m *Manifest) config() (Config, error) {
	scheme, err := part.ParseScheme(m.Scheme)
	if err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrManifestCorrupt, err)
	}
	storage, err := lcc.ParseStorageMode(m.Storage)
	if err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrManifestCorrupt, err)
	}
	return Config{
		Dataset:        m.Dataset,
		Ranks:          m.Ranks,
		Scheme:         scheme,
		DelegateBytes:  m.DelegateBytes,
		Storage:        storage,
		MemBudgetBytes: m.MemBudgetBytes,
		MaxConcurrent:  m.MaxConcurrent,
		QueueDepth:     m.QueueDepth,
		DefaultTimeout: time.Duration(m.DefaultTimeoutMS) * time.Millisecond,
		StallTimeout:   time.Duration(m.StallTimeoutMS) * time.Millisecond,
	}, nil
}

// manifestFor captures an instance's durable half. Instances serving a
// directly injected Graph (cfg.Graph != nil) have no dataset to rebuild
// from and report ok=false: they are served but not durable.
func manifestFor(name string, cfg Config) (*Manifest, bool) {
	if cfg.Graph != nil || cfg.Dataset == "" {
		return nil, false
	}
	return &Manifest{
		Name:             name,
		Dataset:          cfg.Dataset,
		Ranks:            cfg.Ranks,
		Scheme:           cfg.Scheme.String(),
		DelegateBytes:    cfg.DelegateBytes,
		Storage:          cfg.Storage.String(),
		MemBudgetBytes:   cfg.MemBudgetBytes,
		MaxConcurrent:    cfg.MaxConcurrent,
		QueueDepth:       cfg.QueueDepth,
		DefaultTimeoutMS: int64(cfg.DefaultTimeout / time.Millisecond),
		StallTimeoutMS:   int64(cfg.StallTimeout / time.Millisecond),
	}, true
}

// ManifestStore persists instance manifests in one directory — the
// daemon's -state-dir. All methods are safe for concurrent use in the
// sense the filesystem provides: saves are atomic renames, loads verify
// checksums, and a reader never observes a torn file.
type ManifestStore struct {
	dir string
}

// NewManifestStore opens (creating if needed) the state directory.
func NewManifestStore(dir string) (*ManifestStore, error) {
	if dir == "" {
		return nil, errors.New("serve: manifest store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &ManifestStore{dir: dir}, nil
}

// Dir returns the state directory the store persists into.
func (ms *ManifestStore) Dir() string { return ms.dir }

// Path returns the file the named instance's manifest persists to. The
// instance name is sanitized for the filesystem and disambiguated with an
// FNV hash of the raw name, so distinct names never collide.
func (ms *ManifestStore) Path(name string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	if len(safe) > 64 {
		safe = safe[:64]
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	return filepath.Join(ms.dir, fmt.Sprintf("%s-%016x.lcm", safe, h.Sum64()))
}

// Save persists the manifest atomically AND durably: the framed file is
// written to a temp name in the same directory, fsynced, renamed into
// place, and the directory itself is fsynced. The rename gives atomicity
// (a concurrent reader, or a crash mid-write, sees either the old
// manifest or the new one, never a torn hybrid); the two syncs give
// crash-consistency — without the file sync a power loss after the
// rename can surface a zero-length or garbage file (the rename commits
// the name before the data reaches disk), and without the directory sync
// the rename itself can be lost.
func (ms *ManifestStore) Save(m *Manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 16+len(payload)+4)
	buf = append(buf, manifestMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, ManifestVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, manifestCRC))

	path := ms.Path(m.Name)
	tmp, err := os.CreateTemp(ms.dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(ms.dir)
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Filesystems that refuse to sync directories (some network mounts)
// degrade to rename-only atomicity rather than failing the save.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// Remove deletes the named instance's manifest. A missing file is not an
// error: removal is idempotent.
func (ms *ManifestStore) Remove(name string) error {
	err := os.Remove(ms.Path(name))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Load reads and verifies one manifest file.
func (ms *ManifestStore) Load(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, &ManifestError{Path: path, Reason: err.Error(), Err: ErrManifestCorrupt}
	}
	if len(raw) < 20 {
		return nil, &ManifestError{Path: path, Reason: fmt.Sprintf("truncated: %d bytes", len(raw)), Err: ErrManifestCorrupt}
	}
	if *(*[8]byte)(raw[:8]) != manifestMagic {
		return nil, &ManifestError{Path: path, Reason: fmt.Sprintf("bad magic %q", raw[:8]), Err: ErrManifestCorrupt}
	}
	if v := binary.LittleEndian.Uint32(raw[8:]); v != ManifestVersion {
		return nil, &ManifestError{Path: path, Reason: fmt.Sprintf("version %d (want %d)", v, ManifestVersion), Err: ErrManifestVersion}
	}
	length := binary.LittleEndian.Uint32(raw[12:])
	if uint64(len(raw)) != 16+uint64(length)+4 {
		return nil, &ManifestError{Path: path, Reason: fmt.Sprintf("framing: %d bytes for payload length %d", len(raw), length), Err: ErrManifestCorrupt}
	}
	payload := raw[16 : 16+length]
	stored := binary.LittleEndian.Uint32(raw[16+length:])
	if got := crc32.Checksum(payload, manifestCRC); got != stored {
		return nil, &ManifestError{Path: path, Reason: fmt.Sprintf("checksum mismatch (stored %#x, computed %#x)", stored, got), Err: ErrManifestCorrupt}
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, &ManifestError{Path: path, Reason: fmt.Sprintf("payload: %v", err), Err: ErrManifestCorrupt}
	}
	if m.Name == "" || m.Dataset == "" {
		return nil, &ManifestError{Path: path, Reason: "payload missing name or dataset", Err: ErrManifestCorrupt}
	}
	return &m, nil
}

// LoadAll reads every manifest in the state directory, sorted by instance
// name. Unreadable files — corrupt, truncated, version-skewed — are
// returned as typed *ManifestError values alongside the good manifests:
// recovery reports them loudly and restores everything else.
func (ms *ManifestStore) LoadAll() ([]*Manifest, []*ManifestError) {
	entries, err := os.ReadDir(ms.dir)
	if err != nil {
		return nil, []*ManifestError{{Path: ms.dir, Reason: err.Error(), Err: ErrManifestCorrupt}}
	}
	var (
		manifests []*Manifest
		skipped   []*ManifestError
	)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".lcm") {
			continue
		}
		m, err := ms.Load(filepath.Join(ms.dir, e.Name()))
		if err != nil {
			var me *ManifestError
			if !errors.As(err, &me) {
				me = &ManifestError{Path: e.Name(), Reason: err.Error(), Err: ErrManifestCorrupt}
			}
			skipped = append(skipped, me)
			continue
		}
		manifests = append(manifests, m)
	}
	sort.Slice(manifests, func(i, j int) bool { return manifests[i].Name < manifests[j].Name })
	return manifests, skipped
}
