package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// TestLifecycleTransitionEdges pins every rejected edge of the state
// machine to its typed error: no edge races, none hangs.
func TestLifecycleTransitionEdges(t *testing.T) {
	ctx := context.Background()
	inst := serve.NewInstance("edges", serve.Config{Dataset: "fb-sim", Ranks: 2})

	if _, err := inst.Run(ctx, pullQuery(1)); !errors.Is(err, serve.ErrNotReady) {
		t.Errorf("run before Start: err = %v, want ErrNotReady", err)
	}
	if err := inst.Reload(); !errors.Is(err, serve.ErrNotReady) {
		t.Errorf("Reload before Start: err = %v, want ErrNotReady", err)
	}
	if err := inst.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if st := inst.State(); st != serve.StateReady {
		t.Fatalf("state after Start = %v, want ready", st)
	}
	if err := inst.Start(); !errors.Is(err, serve.ErrAlreadyRunning) {
		t.Errorf("double Start: err = %v, want ErrAlreadyRunning", err)
	}
	if err := inst.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st := inst.State(); st != serve.StateExited {
		t.Fatalf("state after Stop = %v, want exited", st)
	}
	if err := inst.Stop(); !errors.Is(err, serve.ErrInstanceExited) {
		t.Errorf("double Stop: err = %v, want ErrInstanceExited", err)
	}
	if _, err := inst.Run(ctx, pullQuery(1)); !errors.Is(err, serve.ErrInstanceExited) {
		t.Errorf("run on exited: err = %v, want ErrInstanceExited", err)
	}
	if err := inst.Reload(); !errors.Is(err, serve.ErrInstanceExited) {
		t.Errorf("Reload on exited: err = %v, want ErrInstanceExited", err)
	}
	if err := inst.Start(); !errors.Is(err, serve.ErrInstanceExited) {
		t.Errorf("Start after Stop: err = %v, want ErrInstanceExited", err)
	}
}

// TestLifecycleLoadFailure: a failing load leaves the instance unhealthy
// with the cause recorded, and Reload retries it.
func TestLifecycleLoadFailure(t *testing.T) {
	inst := serve.NewInstance("bad", serve.Config{Dataset: "no-such-dataset"})
	if err := inst.Start(); err == nil {
		t.Fatal("Start with unknown dataset succeeded")
	}
	if st := inst.State(); st != serve.StateUnhealthy {
		t.Fatalf("state = %v, want unhealthy", st)
	}
	if inst.Failure() == nil {
		t.Error("Failure() = nil after failed load")
	}
	if _, err := inst.Run(context.Background(), pullQuery(1)); !errors.Is(err, serve.ErrUnhealthy) {
		t.Errorf("run on unhealthy: err = %v, want ErrUnhealthy", err)
	}
	if err := inst.Reload(); err == nil {
		t.Error("Reload with unknown dataset succeeded")
	}
	if st := inst.State(); st != serve.StateUnhealthy {
		t.Fatalf("state after failed Reload = %v, want unhealthy", st)
	}
}

// TestLifecycleUnknownEngine: a bad query fails the run, not the
// instance.
func TestLifecycleUnknownEngine(t *testing.T) {
	inst := fbInstance(t)
	if _, err := inst.Run(context.Background(), serve.Query{Engine: "bogus"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if st := inst.State(); st != serve.StateReady {
		t.Fatalf("state = %v, want ready", st)
	}
	if ctr := inst.Counters(); ctr.Failed != 1 {
		t.Errorf("counters = %+v, want Failed 1", ctr)
	}
}

// blockingQuery returns a query whose first remote read parks until
// release is closed, plus the channel signaling the run is in flight.
func blockingQuery(workers int) (q serve.Query, entered, release chan struct{}) {
	entered, release = make(chan struct{}), make(chan struct{})
	var once sync.Once
	q = pullQuery(workers)
	q.Options.OnRemoteRead = func(rank int, v graph.V) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	return q, entered, release
}

// TestLifecycleAdmissionControl: MaxConcurrent bounds in-flight runs;
// overflow is an immediate typed ErrBusy, and draining restores ready.
func TestLifecycleAdmissionControl(t *testing.T) {
	inst := serve.NewInstance("adm", serve.Config{Dataset: "fb-sim", Ranks: 4, MaxConcurrent: 1})
	if err := inst.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	q, entered, release := blockingQuery(4)
	errCh := make(chan error, 1)
	go func() {
		_, err := inst.Run(context.Background(), q)
		errCh <- err
	}()
	<-entered
	if st := inst.State(); st != serve.StateBusy {
		t.Fatalf("state with run in flight = %v, want busy", st)
	}
	if _, err := inst.Run(context.Background(), pullQuery(1)); !errors.Is(err, serve.ErrBusy) {
		t.Fatalf("overflow admission: err = %v, want ErrBusy", err)
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatalf("blocked run: %v", err)
	}
	if st := inst.State(); st != serve.StateReady {
		t.Fatalf("state after drain = %v, want ready", st)
	}
	if ctr := inst.Counters(); ctr.Served != 1 || ctr.Rejected != 1 {
		t.Errorf("counters = %+v, want Served 1, Rejected 1", ctr)
	}
}

// TestSupervisorRegistry covers the named-instance surface the lccd
// server exposes: load, duplicate load, run, ps, stop, replace.
func TestSupervisorRegistry(t *testing.T) {
	ctx := context.Background()
	sup := serve.NewSupervisor()
	if _, err := sup.Run(ctx, "nope", pullQuery(1)); !errors.Is(err, serve.ErrUnknownInstance) {
		t.Errorf("run on unknown: err = %v, want ErrUnknownInstance", err)
	}
	cfg := serve.Config{Dataset: "fb-sim", Ranks: 4}
	if _, err := sup.Load("fb", cfg); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := sup.Load("fb", cfg); !errors.Is(err, serve.ErrAlreadyRunning) {
		t.Errorf("duplicate Load: err = %v, want ErrAlreadyRunning", err)
	}
	res, err := sup.Run(ctx, "fb", pullQuery(4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertPins(t, res)
	infos := sup.List()
	if len(infos) != 1 || infos[0].Name != "fb" || infos[0].State != "ready" {
		t.Errorf("List = %+v, want one ready instance fb", infos)
	}
	if infos[0].Vertices == 0 || infos[0].Arcs == 0 {
		t.Errorf("List does not report graph size: %+v", infos[0])
	}
	if !sup.Healthy() {
		t.Error("Healthy() = false with one ready instance")
	}
	if err := sup.Stop("fb"); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, err := sup.Run(ctx, "fb", pullQuery(1)); !errors.Is(err, serve.ErrInstanceExited) {
		t.Errorf("run on stopped: err = %v, want ErrInstanceExited", err)
	}
	// An exited name is replaceable.
	if _, err := sup.Load("fb", cfg); err != nil {
		t.Fatalf("Load over exited: %v", err)
	}
	if err := sup.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestSupervisorShutdownDrains: shutdown fences new admissions at once
// and waits for in-flight runs up to the context deadline.
func TestSupervisorShutdownDrains(t *testing.T) {
	sup := serve.NewSupervisor()
	inst, err := sup.Load("fb", serve.Config{Dataset: "fb-sim", Ranks: 4})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	q, entered, release := blockingQuery(4)
	runErr := make(chan error, 1)
	go func() {
		_, err := inst.Run(context.Background(), q)
		runErr <- err
	}()
	<-entered

	// A drain bounded by a deadline that cannot be met reports it.
	short, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := sup.Shutdown(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with stuck run: err = %v, want DeadlineExceeded", err)
	}
	// The fence is already down: new runs are rejected.
	if _, err := inst.Run(context.Background(), pullQuery(1)); !errors.Is(err, serve.ErrInstanceExited) {
		t.Fatalf("run during drain: err = %v, want ErrInstanceExited", err)
	}
	// Release the run; a second drain completes cleanly.
	close(release)
	if err := <-runErr; err != nil {
		t.Fatalf("in-flight run after stop: %v", err)
	}
	if err := sup.Shutdown(context.Background()); err != nil {
		t.Fatalf("final Shutdown: %v", err)
	}
}
