package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Supervisor manages named instances: the registry behind the lccd
// server's load/run/stop/ps surface. All methods are safe for concurrent
// use; per-run supervision (deadlines, cancellation, panic isolation,
// admission) lives in the instances themselves.
type Supervisor struct {
	mu        sync.Mutex
	instances map[string]*Instance
}

// NewSupervisor creates an empty registry.
func NewSupervisor() *Supervisor {
	return &Supervisor{instances: make(map[string]*Instance)}
}

// Load creates, registers and starts an instance under name. A live
// instance already holding the name is an error (ErrAlreadyRunning); an
// exited one is replaced. On a load failure the instance stays registered
// in its unhealthy state — ps and health report the cause — and the error
// is returned alongside it.
func (s *Supervisor) Load(name string, cfg Config) (*Instance, error) {
	s.mu.Lock()
	if old, ok := s.instances[name]; ok && old.State() != StateExited {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: instance %q: %w", name, ErrAlreadyRunning)
	}
	inst := NewInstance(name, cfg)
	s.instances[name] = inst
	s.mu.Unlock()
	if err := inst.Start(); err != nil {
		return inst, err
	}
	return inst, nil
}

// Get returns the named instance or ErrUnknownInstance.
func (s *Supervisor) Get(name string) (*Instance, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[name]
	if !ok {
		return nil, fmt.Errorf("serve: instance %q: %w", name, ErrUnknownInstance)
	}
	return inst, nil
}

// Run executes a supervised query on the named instance.
func (s *Supervisor) Run(ctx context.Context, name string, q Query) (*QueryResult, error) {
	inst, err := s.Get(name)
	if err != nil {
		return nil, err
	}
	return inst.Run(ctx, q)
}

// Stop moves the named instance to exited. The instance stays listed so
// its terminal state remains observable.
func (s *Supervisor) Stop(name string) error {
	inst, err := s.Get(name)
	if err != nil {
		return err
	}
	return inst.Stop()
}

// List reports every registered instance, sorted by name.
func (s *Supervisor) List() []InstanceInfo {
	s.mu.Lock()
	insts := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	s.mu.Unlock()
	infos := make([]InstanceInfo, len(insts))
	for i, inst := range insts {
		infos[i] = inst.Info()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Healthy reports whether every non-exited instance is serving (ready or
// busy) — the health-endpoint predicate.
func (s *Supervisor) Healthy() bool {
	for _, info := range s.List() {
		if info.State == StateLoading.String() || info.State == StateUnhealthy.String() {
			return false
		}
	}
	return true
}

// Shutdown drains the registry: every instance stops admitting runs, then
// in-flight runs are awaited until ctx expires. The first deadline error
// is returned; instances are stopped regardless.
func (s *Supervisor) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	insts := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	s.mu.Unlock()
	for _, inst := range insts {
		// Fence admissions first so the quiesce below can only shrink.
		_ = inst.Stop() // already-exited instances are fine
	}
	var firstErr error
	for _, inst := range insts {
		if err := inst.Quiesce(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
