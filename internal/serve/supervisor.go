package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Supervisor manages named instances: the registry behind the lccd
// server's load/run/stop/ps surface. Beyond the registry it owns the two
// fleet-level robustness mechanisms (DESIGN.md §8):
//
//   - Memory budgeting: SetMemBudget bounds the total resident snapshot
//     bytes across all instances. A load (or unpark) that overshoots the
//     budget parks idle instances in LRU order — never busy or queued
//     ones — so overload degrades to reload latency instead of OOM.
//   - Manifest persistence: with SetManifestStore, every durable
//     instance's config is checksummed to the state directory on load and
//     removed on explicit stop. Recover replays the manifests after a
//     daemon restart — including a kill -9 — restoring the fleet lazily
//     (parked, rebuilt on first query) or eagerly.
//
// All methods are safe for concurrent use; per-run supervision
// (deadlines, cancellation, panic isolation, queueing) lives in the
// instances themselves.
type Supervisor struct {
	mu        sync.Mutex
	instances map[string]*Instance
	manifests *ManifestStore // nil = no persistence
	memBudget int64          // 0 = unbounded
	parks     int64          // instances parked by budget enforcement

	// Global admission (shed.go): runCap bounds supervised runs in flight
	// across the whole fleet — queued runs count, because a queued run is
	// a promise of future work the server has already accepted.
	runCap     int   // 0 = unbounded
	activeRuns int   // supervised runs in flight (queued + executing)
	shedRuns   int64 // runs rejected by the run cap
	shedLoads  int64 // loads rejected by the memory brownout

	scrub ScrubStats // integrity-scrubbing outcomes (scrub.go)
}

// NewSupervisor creates an empty registry with no memory budget and no
// manifest persistence.
func NewSupervisor() *Supervisor {
	return &Supervisor{instances: make(map[string]*Instance)}
}

// SetManifestStore enables manifest persistence: subsequent loads persist
// their config to the store, stops remove it, and Recover replays it.
// Call before serving traffic.
func (s *Supervisor) SetManifestStore(ms *ManifestStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifests = ms
}

// SetMemBudget bounds the total resident snapshot bytes across all
// instances; 0 removes the bound. Enforcement is by LRU parking of idle
// instances on each load/unpark (see EnsureBudget).
func (s *Supervisor) SetMemBudget(bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memBudget = bytes
}

// Parks reports how many times budget enforcement parked an instance.
func (s *Supervisor) Parks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parks
}

// SetRunCap bounds supervised runs in flight (queued + executing) across
// all instances; 0 removes the bound. Past the cap Supervisor.Run sheds
// with a *ShedError matching ErrServerBusy instead of queueing.
func (s *Supervisor) SetRunCap(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runCap = n
}

// admitRun claims one global run slot or returns the typed shed error.
func (s *Supervisor) admitRun() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runCap > 0 && s.activeRuns >= s.runCap {
		s.shedRuns++
		return &ShedError{
			Reason:     "run-cap",
			ActiveRuns: s.activeRuns,
			RunCap:     s.runCap,
			sentinel:   ErrServerBusy,
		}
	}
	s.activeRuns++
	return nil
}

// releaseRun returns a global run slot.
func (s *Supervisor) releaseRun() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.activeRuns--
}

// admitLoad applies the memory brownout: when the fleet is over budget
// and LRU parking has nothing left to evict, new loads shed with a typed
// *ShedError rather than piling more snapshots onto a host already
// refusing to fit the ones it has. EnsureBudget runs first so the load
// is only refused after eviction genuinely came up empty.
func (s *Supervisor) admitLoad() error {
	s.mu.Lock()
	budget := s.memBudget
	s.mu.Unlock()
	if budget <= 0 {
		return nil
	}
	s.EnsureBudget(nil)
	var total int64
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, inst := range s.instances {
		_, _, _, bytes := inst.residency()
		total += bytes
	}
	if total > budget {
		s.shedLoads++
		return &ShedError{
			Reason:        "memory-brownout",
			ResidentBytes: total,
			BudgetBytes:   budget,
			sentinel:      ErrBrownout,
		}
	}
	return nil
}

// Load creates, registers and starts an instance under name. A live
// instance already holding the name is an error (ErrAlreadyRunning); an
// exited one is replaced. On a load failure the instance stays registered
// in its unhealthy state — ps and health report the cause — and the error
// is returned alongside it. A successful load persists the instance's
// manifest (when a store is set) and enforces the memory budget.
func (s *Supervisor) Load(name string, cfg Config) (*Instance, error) {
	// Global admission first (shed.go): a browned-out server refuses the
	// load before an instance is ever registered, so a shed leaves no
	// state behind.
	if err := s.admitLoad(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if old, ok := s.instances[name]; ok && old.State() != StateExited {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: instance %q: %w", name, ErrAlreadyRunning)
	}
	inst := NewInstance(name, cfg)
	inst.onResident = s.noteResident
	s.instances[name] = inst
	s.mu.Unlock()
	if err := inst.Start(); err != nil {
		return inst, err
	}
	s.persistManifest(inst)
	return inst, nil
}

// persistManifest saves the instance's manifest when persistence is on
// and the instance is durable (dataset-backed). Best-effort by contract:
// a full disk degrades recovery, not serving.
func (s *Supervisor) persistManifest(inst *Instance) {
	s.mu.Lock()
	ms := s.manifests
	s.mu.Unlock()
	if ms == nil {
		return
	}
	if m, ok := manifestFor(inst.Name(), inst.cfg); ok {
		_ = ms.Save(m)
	}
}

// noteResident is the instances' residency hook: after any successful
// load (initial, Reload, unpark) the newly resident bytes may overshoot
// the budget, so enforcement runs with the loading instance exempt — the
// query that triggered the load must win, every other idle instance is a
// parking candidate.
func (s *Supervisor) noteResident(inst *Instance) {
	s.EnsureBudget(inst)
}

// EnsureBudget enforces the memory budget now: while total resident
// snapshot bytes exceed it, the least-recently-used idle instance is
// parked (its manifest already persists, so it stays recoverable and
// serveable). Busy, queued, loading and exclude instances are never
// parked; when nothing is evictable the fleet is allowed to overshoot —
// parking running work would be worse than the memory pressure.
func (s *Supervisor) EnsureBudget(exclude *Instance) {
	s.mu.Lock()
	budget := s.memBudget
	insts := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	s.mu.Unlock()
	if budget <= 0 {
		return
	}
	for {
		type candidate struct {
			inst     *Instance
			lastUsed uint64
		}
		var (
			total int64
			cands []candidate
		)
		for _, inst := range insts {
			resident, idle, lastUsed, bytes := inst.residency()
			if !resident {
				continue
			}
			total += bytes
			if idle && inst != exclude {
				cands = append(cands, candidate{inst, lastUsed})
			}
		}
		if total <= budget || len(cands) == 0 {
			return
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].lastUsed < cands[j].lastUsed })
		// Park the coldest candidate; a race with a fresh admission makes
		// Park return ErrBusy, which simply moves on to the next round.
		if err := cands[0].inst.Park(); err == nil {
			s.mu.Lock()
			s.parks++
			s.mu.Unlock()
		}
	}
}

// RecoveryReport summarizes one Recover pass: which instances were
// restored (and how) and which manifests were skipped, loudly, with their
// typed errors.
type RecoveryReport struct {
	Restored []string         // instance names restored from manifests
	Failed   []string         // manifests that loaded but whose instance failed to start (eager only)
	Skipped  []*ManifestError // unreadable manifests: corrupt or version-skewed
}

// Recover replays the manifest store after a daemon restart, restoring
// every persisted instance. eager rebuilds each snapshot immediately (a
// failing build leaves that instance registered unhealthy, in Failed);
// lazy (the default daemon mode) registers instances parked, so the first
// query against each rebuilds its snapshot on demand. Corrupt or
// version-skewed manifests are skipped with typed errors in the report —
// never fatal — and names already registered live are left untouched.
func (s *Supervisor) Recover(eager bool) RecoveryReport {
	s.mu.Lock()
	ms := s.manifests
	s.mu.Unlock()
	var rep RecoveryReport
	if ms == nil {
		return rep
	}
	manifests, skipped := ms.LoadAll()
	rep.Skipped = skipped
	for _, m := range manifests {
		cfg, err := m.config()
		if err != nil {
			rep.Skipped = append(rep.Skipped, &ManifestError{
				Path: ms.Path(m.Name), Reason: err.Error(), Err: ErrManifestCorrupt,
			})
			continue
		}
		s.mu.Lock()
		if old, ok := s.instances[m.Name]; ok && old.State() != StateExited {
			s.mu.Unlock()
			continue
		}
		inst := newParkedInstance(m.Name, cfg)
		inst.onResident = s.noteResident
		s.instances[m.Name] = inst
		s.mu.Unlock()
		if eager {
			if err := inst.Reload(); err != nil {
				rep.Failed = append(rep.Failed, m.Name)
				continue
			}
		}
		rep.Restored = append(rep.Restored, m.Name)
	}
	return rep
}

// Get returns the named instance or ErrUnknownInstance.
func (s *Supervisor) Get(name string) (*Instance, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[name]
	if !ok {
		return nil, fmt.Errorf("serve: instance %q: %w", name, ErrUnknownInstance)
	}
	return inst, nil
}

// Run executes a supervised query on the named instance. Global
// admission (the server-wide run cap) applies before the instance's own
// queue: a shed run never holds an instance slot, so per-instance
// priority/FIFO ordering is unaffected by the cap.
func (s *Supervisor) Run(ctx context.Context, name string, q Query) (*QueryResult, error) {
	inst, err := s.Get(name)
	if err != nil {
		return nil, err
	}
	if err := s.admitRun(); err != nil {
		return nil, err
	}
	defer s.releaseRun()
	return inst.Run(ctx, q)
}

// Stop moves the named instance to exited and removes its manifest: an
// explicit stop is a statement the instance should not return, so it is
// the one transition that forgets durable state. The instance stays
// listed so its terminal state remains observable.
func (s *Supervisor) Stop(name string) error {
	inst, err := s.Get(name)
	if err != nil {
		return err
	}
	if err := inst.Stop(); err != nil {
		return err
	}
	s.mu.Lock()
	ms := s.manifests
	s.mu.Unlock()
	if ms != nil {
		_ = ms.Remove(name)
	}
	return nil
}

// List reports every registered instance, sorted by name.
func (s *Supervisor) List() []InstanceInfo {
	s.mu.Lock()
	insts := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	s.mu.Unlock()
	infos := make([]InstanceInfo, len(insts))
	for i, inst := range insts {
		infos[i] = inst.Info()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Healthy reports whether every non-exited instance is serving (ready,
// busy, or parked — a parked instance serves via transparent reload) —
// the health-endpoint predicate. A quarantined instance is not healthy:
// its auto-reload is in flight and may yet fail.
func (s *Supervisor) Healthy() bool {
	for _, info := range s.List() {
		switch info.State {
		case StateLoading.String(), StateUnhealthy.String(), StateQuarantined.String():
			return false
		}
	}
	return true
}

// ServerInfo is the fleet-level half of the ps view: lifecycle-state
// counts across all instances plus the global-admission and robustness
// counters. The restart smoke asserts recovery against the state counts
// (e.g. states["parked"] after a lazy Recover).
type ServerInfo struct {
	Instances     int            `json:"instances"`
	States        map[string]int `json:"states"`
	ActiveRuns    int            `json:"active_runs"`
	RunCap        int            `json:"run_cap,omitempty"`
	ResidentBytes int64          `json:"resident_bytes"`
	BudgetBytes   int64          `json:"budget_bytes,omitempty"`
	ShedRuns      int64          `json:"shed_runs,omitempty"`
	ShedLoads     int64          `json:"shed_loads,omitempty"`
	Parks         int64          `json:"parks,omitempty"`
	Scrub         ScrubStats     `json:"scrub"`
}

// ServerInfo reports the fleet-level view.
func (s *Supervisor) ServerInfo() ServerInfo {
	s.mu.Lock()
	insts := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	info := ServerInfo{
		Instances:   len(insts),
		States:      make(map[string]int),
		ActiveRuns:  s.activeRuns,
		RunCap:      s.runCap,
		BudgetBytes: s.memBudget,
		ShedRuns:    s.shedRuns,
		ShedLoads:   s.shedLoads,
		Parks:       s.parks,
		Scrub:       s.scrub,
	}
	s.mu.Unlock()
	for _, inst := range insts {
		info.States[inst.State().String()]++
		info.ResidentBytes += inst.MemBytes()
	}
	return info
}

// Shutdown drains the registry: every instance stops admitting runs and
// fences its queue, then in-flight runs are awaited until ctx expires.
// All per-instance drain failures are collected and joined (errors.Join),
// each naming its instance, so a multi-instance drain failure reports
// every stuck instance rather than the first; instances are stopped
// regardless. Manifests are retained — a drained daemon restarts into the
// same fleet.
func (s *Supervisor) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	insts := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	s.mu.Unlock()
	for _, inst := range insts {
		// Fence admissions and flush queues first so the quiesce below
		// can only shrink.
		_ = inst.Stop() // already-exited instances are fine
	}
	var errs []error
	for _, inst := range insts {
		if err := inst.Quiesce(ctx); err != nil {
			errs = append(errs, fmt.Errorf("instance %q: %w", inst.Name(), err))
		}
	}
	return errors.Join(errs...)
}
