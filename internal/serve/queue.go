package serve

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"repro/internal/lcc"
)

// The admission queue (DESIGN.md §8): when every MaxConcurrent slot is
// taken and Config.QueueDepth > 0, an arriving run parks in a bounded
// per-instance priority queue instead of bouncing with ErrBusy. Higher
// Query.Priority runs first; within a priority the queue is FIFO (a
// monotone sequence number breaks ties). Overflow past QueueDepth stays a
// fast typed ErrBusy rejection — the queue bounds latency, it does not
// hide overload.
//
// A queued run keeps honoring its context and an optional
// deadline-in-queue (Query.QueueTimeout): cancellation or expiry removes
// the waiter and returns typed errors without consuming a slot. The
// grant/abandon race — a slot granted in the same instant the waiter
// gives up — is resolved under the instance lock: a granted waiter that
// abandons releases its slot back to the queue, so runs are never lost
// and never duplicated. Stop, panic and load-failure transitions fence
// the queue: every waiter is flushed with the typed lifecycle error
// before in-flight runs are drained.

// waiter is one queued admission, owned by the instance heap until
// granted or removed (both under the instance lock).
type waiter struct {
	priority int
	seq      uint64        // admission order; breaks priority ties FIFO
	ready    chan struct{} // closed exactly once, on grant or fence
	granted  bool          // true = a run slot was claimed on our behalf
	err      error         // set before close(ready) when fenced
	index    int           // heap position; -1 once popped or removed
}

// waiterQueue is a max-heap on (priority, -seq): highest priority first,
// FIFO within a priority.
type waiterQueue []*waiter

func (q waiterQueue) Len() int { return len(q) }

func (q waiterQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q waiterQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}

func (q *waiterQueue) Push(x any) {
	w := x.(*waiter)
	w.index = len(*q)
	*q = append(*q, w)
}

func (q *waiterQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*q = old[:n-1]
	return w
}

// QueueTimeoutError reports a run whose deadline-in-queue expired before a
// slot freed. It wraps ErrQueueTimeout and carries the measured wait so
// the daemon can report it (lccd maps this to 504 with the wait in the
// JSON error body).
type QueueTimeoutError struct {
	Wait time.Duration
}

func (e *QueueTimeoutError) Error() string {
	return fmt.Sprintf("serve: queue deadline expired after %v", e.Wait)
}

func (e *QueueTimeoutError) Unwrap() error { return ErrQueueTimeout }

// grantLocked hands freed slots to the highest-priority waiters. Called
// under the instance lock whenever a slot frees (finish, abandoned grant).
func (inst *Instance) grantLocked() {
	for inst.active < inst.cfg.MaxConcurrent && inst.queue.Len() > 0 {
		w := heap.Pop(&inst.queue).(*waiter)
		w.granted = true
		inst.active++
		close(w.ready)
	}
}

// flushQueueLocked fences the queue: every waiter still queued is removed
// and woken with err. Called under the instance lock on the transitions
// that end service (Stop, panic → unhealthy, unpark load failure), before
// in-flight runs drain.
func (inst *Instance) flushQueueLocked(err error) {
	for inst.queue.Len() > 0 {
		w := heap.Pop(&inst.queue).(*waiter)
		w.err = err
		close(w.ready)
	}
}

// enqueueLocked parks the caller in the admission queue and blocks until
// granted, fenced, canceled or expired. Takes the instance lock held and
// releases it; returns with the lock released.
func (inst *Instance) enqueueLocked(q Query, done <-chan struct{}, cause func() error) (*waiterOutcome, error) {
	w := &waiter{priority: q.Priority, seq: inst.seq, ready: make(chan struct{})}
	inst.seq++
	heap.Push(&inst.queue, w)
	inst.mu.Unlock()

	start := time.Now()
	var timeC <-chan time.Time
	if q.QueueTimeout > 0 {
		timer := time.NewTimer(q.QueueTimeout)
		defer timer.Stop()
		timeC = timer.C
	}

	var abandonErr error
	select {
	case <-w.ready:
		wait := time.Since(start)
		if w.err != nil {
			// Fenced: the instance stopped serving while we queued.
			inst.mu.Lock()
			inst.ctr.Rejected++
			inst.mu.Unlock()
			return nil, w.err
		}
		// Granted: a slot is already claimed on our behalf. Re-validate
		// the lifecycle — the instance may have flipped unhealthy or
		// exited between the grant and this wakeup — and capture the
		// snapshot under the lock.
		inst.mu.Lock()
		switch inst.state {
		case StateExited:
			abandonErr = ErrInstanceExited
		case StateUnhealthy:
			abandonErr = fmt.Errorf("%w (cause: %v)", ErrUnhealthy, inst.failure)
		}
		if abandonErr != nil {
			inst.releaseSlotLocked()
			inst.ctr.Rejected++
			inst.mu.Unlock()
			return nil, abandonErr
		}
		snap := inst.snap
		inst.touchLocked()
		inst.mu.Unlock()
		return &waiterOutcome{snap: snap, wait: wait}, nil
	case <-done:
		abandonErr = fmt.Errorf("serve: canceled while queued: %w", cause())
	case <-timeC:
		abandonErr = &QueueTimeoutError{Wait: time.Since(start)}
	}

	// Abandon path: leave the queue, or — if a grant raced us — give the
	// slot back so the run is neither lost nor duplicated.
	inst.mu.Lock()
	if w.granted {
		inst.releaseSlotLocked()
	} else if w.index >= 0 {
		heap.Remove(&inst.queue, w.index)
	}
	var qe *QueueTimeoutError
	if errors.As(abandonErr, &qe) {
		inst.ctr.TimedOut++
	} else {
		inst.ctr.Canceled++
	}
	inst.mu.Unlock()
	return nil, abandonErr
}

// waiterOutcome is a successful queue exit: the snapshot to run against
// and the measured wait.
type waiterOutcome struct {
	snap *lcc.Snapshot
	wait time.Duration
}

// releaseSlotLocked returns an unclaimed slot to the pool: the mirror of
// the claim grantLocked made. Called under the instance lock.
func (inst *Instance) releaseSlotLocked() {
	inst.active--
	inst.grantLocked()
	if inst.state == StateBusy && inst.active == 0 {
		inst.state = StateReady
	}
	inst.cond.Broadcast()
}
