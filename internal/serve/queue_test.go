package serve_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// Queue-admission tests (DESIGN.md §8): FIFO within priority, cancellation
// and deadline while queued, fence on shutdown, typed overflow — and the
// golden pins through it all, so a run that waited in the queue is still
// bit-identical to one that walked straight in.

// queuedInstance builds an fb-sim instance with one run slot and a bounded
// admission queue.
func queuedInstance(t *testing.T, depth int) *serve.Instance {
	t.Helper()
	inst := serve.NewInstance("q", serve.Config{
		Dataset: "fb-sim", Ranks: 4, MaxConcurrent: 1, QueueDepth: depth,
	})
	if err := inst.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return inst
}

// occupy claims the instance's only run slot with a blocking run and
// returns the release control plus the join handle for the blocker.
func occupy(t *testing.T, inst *serve.Instance, workers int) (release chan struct{}, join func()) {
	t.Helper()
	q, entered, release := blockingQuery(workers)
	done := make(chan error, 1)
	go func() {
		_, err := inst.Run(context.Background(), q)
		done <- err
	}()
	<-entered
	return release, func() {
		if err := <-done; err != nil {
			t.Fatalf("blocking run: %v", err)
		}
	}
}

// waitQueued polls until the instance reports n queued runs.
func waitQueued(t *testing.T, inst *serve.Instance, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for inst.Info().Queued != n {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want %d (timed out)", inst.Info().Queued, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueFIFOWithinPriority enqueues five runs at mixed priorities
// behind an occupied slot and asserts the grant order: strictly by
// priority descending, FIFO within each priority, at Workers ∈ {1,4}.
// Every granted run must still reproduce the golden pins.
func TestQueueFIFOWithinPriority(t *testing.T) {
	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			inst := queuedInstance(t, 8)
			release, join := occupy(t, inst, w)

			// ids in enqueue order with their priorities; expected grant
			// order is 5a, 5b (FIFO within 5), 1, 0a, 0b.
			specs := []struct {
				id       string
				priority int
			}{{"0a", 0}, {"5a", 5}, {"1", 1}, {"5b", 5}, {"0b", 0}}
			var (
				mu      sync.Mutex
				started []string
			)
			var wg sync.WaitGroup
			for i, spec := range specs {
				q := pullQuery(w)
				q.Priority = spec.priority
				id := spec.id
				var once sync.Once
				q.Options.OnRemoteRead = func(rank int, v graph.V) {
					once.Do(func() {
						mu.Lock()
						started = append(started, id)
						mu.Unlock()
					})
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := inst.Run(context.Background(), q)
					if err != nil {
						t.Errorf("queued run %s: %v", id, err)
						return
					}
					if res.QueueWait <= 0 {
						t.Errorf("queued run %s: QueueWait = %v, want > 0", id, res.QueueWait)
					}
					assertPins(t, res)
				}()
				// Serialize enqueue order so the FIFO tiebreak is
				// deterministic.
				waitQueued(t, inst, i+1)
			}
			close(release)
			join()
			wg.Wait()

			want := []string{"5a", "5b", "1", "0a", "0b"}
			if fmt.Sprint(started) != fmt.Sprint(want) {
				t.Fatalf("grant order = %v, want %v", started, want)
			}
			if ctr := inst.Counters(); ctr.Served != int64(len(specs))+1 {
				t.Errorf("Served = %d, want %d", ctr.Served, len(specs)+1)
			}
		})
	}
}

// TestQueueCancelWhileQueued cancels a run while it waits in the queue:
// the error carries the context cause, the waiter leaves the queue without
// consuming a slot, and the instance keeps serving.
func TestQueueCancelWhileQueued(t *testing.T) {
	inst := queuedInstance(t, 4)
	release, join := occupy(t, inst, 2)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := inst.Run(ctx, pullQuery(2))
		errCh <- err
	}()
	waitQueued(t, inst, 1)
	cancel()
	err := <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled-in-queue err = %v, want context.Canceled in chain", err)
	}
	if got := inst.Info().Queued; got != 0 {
		t.Fatalf("queued after cancel = %d, want 0", got)
	}
	close(release)
	join()
	if ctr := inst.Counters(); ctr.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", ctr.Canceled)
	}
	res, err := inst.Run(context.Background(), pullQuery(2))
	if err != nil {
		t.Fatalf("rerun after queue cancel: %v", err)
	}
	assertPins(t, res)
}

// TestQueueDeadlineInQueue lets a queued run's deadline-in-queue expire:
// the run fails with ErrQueueTimeout, the typed *QueueTimeoutError carries
// the measured wait, and the TimedOut counter moves.
func TestQueueDeadlineInQueue(t *testing.T) {
	inst := queuedInstance(t, 4)
	release, join := occupy(t, inst, 2)
	defer func() { close(release); join() }()

	q := pullQuery(2)
	q.QueueTimeout = 20 * time.Millisecond
	_, err := inst.Run(context.Background(), q)
	if !errors.Is(err, serve.ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	var qe *serve.QueueTimeoutError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QueueTimeoutError in chain", err)
	}
	if qe.Wait < 20*time.Millisecond {
		t.Errorf("QueueTimeoutError.Wait = %v, want >= 20ms", qe.Wait)
	}
	if got := inst.Info().Queued; got != 0 {
		t.Fatalf("queued after timeout = %d, want 0", got)
	}
	if ctr := inst.Counters(); ctr.TimedOut != 1 {
		t.Errorf("TimedOut = %d, want 1", ctr.TimedOut)
	}
}

// TestQueueFenceOnStop stops an instance while a run waits in its queue:
// the queued run is fenced out with ErrInstanceExited before the in-flight
// run drains, and the in-flight run still completes with the golden pins.
func TestQueueFenceOnStop(t *testing.T) {
	inst := queuedInstance(t, 4)
	q, entered, release := blockingQuery(2)
	blockerRes := make(chan *serve.QueryResult, 1)
	go func() {
		res, err := inst.Run(context.Background(), q)
		if err != nil {
			t.Errorf("in-flight run across Stop: %v", err)
		}
		blockerRes <- res
	}()
	<-entered

	fenced := make(chan error, 1)
	go func() {
		_, err := inst.Run(context.Background(), pullQuery(2))
		fenced <- err
	}()
	waitQueued(t, inst, 1)

	if err := inst.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// The fence fires on Stop, before the in-flight run is released.
	select {
	case err := <-fenced:
		if !errors.Is(err, serve.ErrInstanceExited) {
			t.Fatalf("fenced run err = %v, want ErrInstanceExited", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued run not fenced out by Stop")
	}
	close(release)
	if res := <-blockerRes; res != nil {
		assertPins(t, res)
	}
	if ctr := inst.Counters(); ctr.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1 (the fenced waiter)", ctr.Rejected)
	}
}

// TestQueueOverflowTypedRejection fills the queue and asserts overflow is
// still the fast typed ErrBusy, not a blocking wait.
func TestQueueOverflowTypedRejection(t *testing.T) {
	inst := queuedInstance(t, 1)
	release, join := occupy(t, inst, 2)

	queued := make(chan error, 1)
	go func() {
		_, err := inst.Run(context.Background(), pullQuery(2))
		queued <- err
	}()
	waitQueued(t, inst, 1)

	if _, err := inst.Run(context.Background(), pullQuery(2)); !errors.Is(err, serve.ErrBusy) {
		t.Fatalf("overflow err = %v, want ErrBusy", err)
	}
	if ctr := inst.Counters(); ctr.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", ctr.Rejected)
	}
	close(release)
	join()
	if err := <-queued; err != nil {
		t.Fatalf("queued run: %v", err)
	}
}
