package serve

// Server-wide load shedding: the supervisor's global admission layer,
// sitting above the per-instance queues. Two mechanisms, one error shape:
//
//   - Run cap: SetRunCap bounds supervised runs in flight across ALL
//     instances (queued + executing). Past it, Supervisor.Run sheds with
//     a *ShedError matching ErrServerBusy — the server-is-saturated
//     answer, distinct from the per-instance ErrBusy which only says one
//     instance's queue is full.
//   - Memory brownout: when resident bytes exceed the memory budget and
//     LRU parking has nothing left to evict (every resident instance is
//     busy), the server is browned out — new Loads shed with a
//     *ShedError matching ErrBrownout until pressure drains. Runs are
//     NOT shed by the brownout: they queue as usual, because a queued
//     run costs queue-entry bytes while a load costs a whole snapshot.
//
// Ordering contract with the per-instance queues: the global check runs
// before instance admission, so a shed run never holds (or even
// contends) an instance queue slot, and a shed load never registers an
// instance. The per-instance priority queue therefore keeps its local
// FIFO/priority guarantees undisturbed — global shedding only decides
// whether you get to the instance at all (DESIGN.md §10).

import (
	"errors"
	"fmt"
)

// Global-admission sentinels. The concrete error is always a *ShedError
// carrying the numbers behind the decision.
var (
	// ErrServerBusy rejects a run because the server-wide run cap is
	// reached: the fleet, not one instance, is saturated.
	ErrServerBusy = errors.New("serve: server run cap reached")
	// ErrBrownout rejects a load because resident memory exceeds the
	// budget and nothing is evictable.
	ErrBrownout = errors.New("serve: memory brownout")
)

// ShedError is the structured global-admission rejection: which
// mechanism fired (Reason is "run-cap" or "memory-brownout") and the
// numbers that justify it — enough for a client to decide between
// backoff and capacity planning, and for lccd to serve the decision as
// structured JSON.
type ShedError struct {
	Reason        string `json:"reason"`
	ActiveRuns    int    `json:"active_runs,omitempty"`
	RunCap        int    `json:"run_cap,omitempty"`
	ResidentBytes int64  `json:"resident_bytes,omitempty"`
	BudgetBytes   int64  `json:"budget_bytes,omitempty"`

	sentinel error
}

func (e *ShedError) Error() string {
	switch e.Reason {
	case "run-cap":
		return fmt.Sprintf("serve: shed run: %d/%d supervised runs in flight", e.ActiveRuns, e.RunCap)
	case "memory-brownout":
		return fmt.Sprintf("serve: shed load: %d resident bytes over budget %d with nothing evictable",
			e.ResidentBytes, e.BudgetBytes)
	default:
		return fmt.Sprintf("serve: shed: %s", e.Reason)
	}
}

func (e *ShedError) Is(target error) bool { return target == e.sentinel }
