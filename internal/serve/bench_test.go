package serve_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/serve"
)

// BenchmarkServeSustainedQPS measures the serving layer under sustained
// concurrent load: one warm instance, GOMAXPROCS client goroutines each
// firing supervised single-worker queries back to back. ns/op is the
// per-query latency at saturation, so sustained QPS = parallelism × 1e9 /
// ns_per_op; allocs/op is the full per-query cost — communicator, clocks,
// caches — on top of the shared snapshot. Records taken with this
// benchmark are tagged "mode":"serve" by bench.sh (BENCH_MODE=serve) and
// benchdiff refuses to diff them against micro-benchmark records.
func BenchmarkServeSustainedQPS(b *testing.B) {
	par := runtime.GOMAXPROCS(0)
	inst := serve.NewInstance("bench", serve.Config{
		Dataset: "fb-sim", Ranks: 4, MaxConcurrent: par,
	})
	if err := inst.Start(); err != nil {
		b.Fatal(err)
	}
	q := serve.Query{Options: lcc.Options{
		Workers: 1, Method: intersect.MethodHybrid, DoubleBuffer: true,
	}}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := inst.Run(ctx, q)
			if err != nil {
				b.Error(err)
				return
			}
			if res.Triangles != pinTriangles {
				b.Errorf("Triangles = %d, want %d", res.Triangles, pinTriangles)
				return
			}
		}
	})
	b.StopTimer()
	if ctr := inst.Counters(); ctr.Rejected != 0 {
		b.Fatalf("admission rejected %d runs at MaxConcurrent=%d", ctr.Rejected, par)
	}
}

// BenchmarkServeQueuedOverload measures the queued-overload regime: twice
// as many clients as run slots, with the overflow parking in the admission
// queue instead of bouncing. ns/op is the end-to-end per-query latency
// including queue wait — the figure a 429-free deployment actually serves
// under 2× overload. The queue is sized for the full overflow, so every
// query completes (no rejections) and the determinism pins still hold on
// every result.
func BenchmarkServeQueuedOverload(b *testing.B) {
	slots := runtime.GOMAXPROCS(0)
	if slots < 2 {
		slots = 2
	}
	clients := 2 * slots
	inst := serve.NewInstance("bench-q", serve.Config{
		Dataset: "fb-sim", Ranks: 4,
		MaxConcurrent: slots / 2, QueueDepth: clients,
	})
	if err := inst.Start(); err != nil {
		b.Fatal(err)
	}
	q := serve.Query{Options: lcc.Options{
		Workers: 1, Method: intersect.MethodHybrid, DoubleBuffer: true,
	}}
	ctx := context.Background()
	b.SetParallelism((clients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := inst.Run(ctx, q)
			if err != nil {
				b.Error(err)
				return
			}
			if res.Triangles != pinTriangles {
				b.Errorf("Triangles = %d, want %d", res.Triangles, pinTriangles)
				return
			}
		}
	})
	b.StopTimer()
	if ctr := inst.Counters(); ctr.Rejected != 0 {
		b.Fatalf("queue overflowed: rejected %d runs with depth %d", ctr.Rejected, clients)
	}
}
