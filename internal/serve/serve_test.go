package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/sched"
	"repro/internal/serve"
)

// The serving layer must hand back bit-identical results run after run —
// canceled, panicked or crash-recovered runs in between may not leak
// state. These constants duplicate the root golden pins for the pull
// configuration (fb-sim, 4 ranks, hybrid, double buffering); golden_test.go
// is their source of truth.
const (
	pinSimBits   = 0x419e343dbb9986d8
	pinLCCBits   = 0x4091b4d6196173a8
	pinTriangles = 351349
	pinSumT      = 1054047
)

var workerSweep = []int{1, 2, 4, 8}

func fbInstance(t *testing.T) *serve.Instance {
	t.Helper()
	inst := serve.NewInstance("fb", serve.Config{Dataset: "fb-sim", Ranks: 4})
	if err := inst.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return inst
}

func pullQuery(workers int) serve.Query {
	return serve.Query{Options: lcc.Options{
		Workers: workers, Method: intersect.MethodHybrid, DoubleBuffer: true,
	}}
}

func assertPins(t *testing.T, res *serve.QueryResult) {
	t.Helper()
	if got := math.Float64bits(res.SimTime); got != pinSimBits {
		t.Errorf("SimTime bits = %#x, want %#x", got, uint64(pinSimBits))
	}
	if res.ScoreBits != pinLCCBits {
		t.Errorf("ScoreBits = %#x, want %#x", res.ScoreBits, uint64(pinLCCBits))
	}
	if res.Triangles != pinTriangles {
		t.Errorf("Triangles = %d, want %d", res.Triangles, pinTriangles)
	}
	if res.SumT != pinSumT {
		t.Errorf("SumT = %d, want %d", res.SumT, pinSumT)
	}
}

// TestRunCancellation cancels a chaos-spec run mid-flight at every worker
// count: the run unwinds with ErrRunCanceled, the instance returns to
// ready, and a rerun reproduces the golden pins bit for bit.
func TestRunCancellation(t *testing.T) {
	for _, w := range workerSweep {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			inst := fbInstance(t)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var reads int64
			q := pullQuery(w)
			chaos := fault.ChaosSpec(7)
			q.Options.Faults = &chaos
			q.Options.OnRemoteRead = func(rank int, v graph.V) {
				if atomic.AddInt64(&reads, 1) == 500 {
					cancel()
				}
			}
			if _, err := inst.Run(ctx, q); !errors.Is(err, sched.ErrRunCanceled) {
				t.Fatalf("canceled run: err = %v, want ErrRunCanceled", err)
			}
			if st := inst.State(); st != serve.StateReady {
				t.Fatalf("state after cancel = %v, want ready", st)
			}
			res, err := inst.Run(context.Background(), pullQuery(w))
			if err != nil {
				t.Fatalf("rerun: %v", err)
			}
			assertPins(t, res)
			if ctr := inst.Counters(); ctr.Canceled != 1 || ctr.Served != 1 {
				t.Errorf("counters = %+v, want Canceled 1, Served 1", ctr)
			}
		})
	}
}

// TestRunCancellationDeadline drives the same path through a per-query
// timeout: the error reports both the cancellation and its deadline cause.
func TestRunCancellationDeadline(t *testing.T) {
	inst := fbInstance(t)
	q := pullQuery(2)
	q.Timeout = time.Millisecond
	_, err := inst.Run(context.Background(), q)
	if !errors.Is(err, sched.ErrRunCanceled) {
		t.Fatalf("err = %v, want ErrRunCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
	if st := inst.State(); st != serve.StateReady {
		t.Fatalf("state after deadline = %v, want ready", st)
	}
	res, err := inst.Run(context.Background(), pullQuery(2))
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	assertPins(t, res)
}

// TestPanicIsolation injects a worker panic at every worker count: the
// run fails with a *sched.PanicError carrying rank and stack, the process
// lives, the instance flips unhealthy and rejects runs until a Reload
// restores service with golden-pinned bits.
func TestPanicIsolation(t *testing.T) {
	for _, w := range workerSweep {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			inst := fbInstance(t)
			var reads int64
			q := pullQuery(w)
			q.Options.OnRemoteRead = func(rank int, v graph.V) {
				if atomic.AddInt64(&reads, 1) == 300 {
					panic("injected worker bug")
				}
			}
			_, err := inst.Run(context.Background(), q)
			var pe *sched.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *sched.PanicError", err)
			}
			if pe.Rank < 0 || pe.Rank >= 4 {
				t.Errorf("PanicError.Rank = %d, want 0..3", pe.Rank)
			}
			if !strings.Contains(fmt.Sprint(pe.Value), "injected worker bug") {
				t.Errorf("PanicError.Value = %v, want the injected value", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("PanicError.Stack is empty")
			}
			if st := inst.State(); st != serve.StateUnhealthy {
				t.Fatalf("state after panic = %v, want unhealthy", st)
			}
			if _, err := inst.Run(context.Background(), pullQuery(w)); !errors.Is(err, serve.ErrUnhealthy) {
				t.Fatalf("run on unhealthy: err = %v, want ErrUnhealthy", err)
			}
			if err := inst.Reload(); err != nil {
				t.Fatalf("Reload: %v", err)
			}
			res, err := inst.Run(context.Background(), pullQuery(w))
			if err != nil {
				t.Fatalf("rerun after reload: %v", err)
			}
			assertPins(t, res)
			if ctr := inst.Counters(); ctr.Panicked != 1 || ctr.Served != 1 {
				t.Errorf("counters = %+v, want Panicked 1, Served 1", ctr)
			}
		})
	}
}

// TestCrashStopFailFast: a fail-fast simulated crash is a deterministic
// run outcome — typed, reproducible, and not an instance failure.
func TestCrashStopFailFast(t *testing.T) {
	inst := fbInstance(t)
	q := pullQuery(2)
	q.Options.Faults = &fault.Spec{Seed: 11, CrashAtOp: 500, CrashRank: 1}
	_, err := inst.Run(context.Background(), q)
	var ce *fault.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *fault.CrashError", err)
	}
	if ce.Rank != 1 || ce.Op != 500 {
		t.Errorf("CrashError = rank %d op %d, want rank 1 op 500", ce.Rank, ce.Op)
	}
	if st := inst.State(); st != serve.StateReady {
		t.Fatalf("state after fail-fast crash = %v, want ready", st)
	}
	// Deterministic: same spec, same error, at a different worker count.
	q2 := pullQuery(4)
	q2.Options.Faults = &fault.Spec{Seed: 11, CrashAtOp: 500, CrashRank: 1}
	_, err2 := inst.Run(context.Background(), q2)
	if err2 == nil || err2.Error() != err.Error() {
		t.Errorf("crash error not deterministic: %v vs %v", err, err2)
	}
	res, err := inst.Run(context.Background(), pullQuery(2))
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	assertPins(t, res)
}

// TestCrashStopRecovery: under CrashRecover the run completes with
// results bit-identical to the fault-free pins, SimTime ≥ fault-free
// (restart plus redo are charged, never free), reproducible across
// worker counts.
func TestCrashStopRecovery(t *testing.T) {
	inst := fbInstance(t)
	var simBits []uint64
	for _, w := range []int{1, 4} {
		q := pullQuery(w)
		q.Options.Faults = &fault.Spec{Seed: 11, CrashAtOp: 500, CrashRank: 1, CrashRecover: true}
		res, err := inst.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("workers=%d: recovered run: %v", w, err)
		}
		if res.Triangles != pinTriangles || res.SumT != pinSumT || res.ScoreBits != pinLCCBits {
			t.Errorf("workers=%d: recovered results drifted: tri %d sumT %d bits %#x",
				w, res.Triangles, res.SumT, res.ScoreBits)
		}
		if ff := math.Float64frombits(pinSimBits); res.SimTime < ff {
			t.Errorf("workers=%d: recovered SimTime %v < fault-free %v", w, res.SimTime, ff)
		}
		simBits = append(simBits, math.Float64bits(res.SimTime))
	}
	if simBits[0] != simBits[1] {
		t.Errorf("recovered SimTime differs across worker counts: %#x vs %#x", simBits[0], simBits[1])
	}
	if st := inst.State(); st != serve.StateReady {
		t.Fatalf("state = %v, want ready", st)
	}
}
