package disttc

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/part"
)

func randomUndirected(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{Src: u, Dst: v})
		}
	}
	g, err := graph.Build(graph.Undirected, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestDistTCMatchesShared(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		g := randomUndirected(rng, 40, 200)
		want := lcc.SharedLCC(g, intersect.MethodHybrid)
		for _, ranks := range []int{1, 2, 4, 8} {
			got, err := Run(g, Options{Ranks: ranks})
			if err != nil {
				t.Fatal(err)
			}
			if got.Triangles != want.Triangles {
				t.Fatalf("trial %d, %d ranks: DistTC Δ = %d, want %d",
					trial, ranks, got.Triangles, want.Triangles)
			}
			for v := range want.LCC {
				if got.LCC[v] != want.LCC[v] {
					t.Fatalf("trial %d, %d ranks: vertex %d lcc = %g, want %g",
						trial, ranks, v, got.LCC[v], want.LCC[v])
				}
			}
		}
	}
}

func TestDistTCOnRMAT(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 7))
	want := lcc.SharedLCC(g, intersect.MethodHybrid)
	got, err := Run(g, Options{Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want.Triangles {
		t.Fatalf("R-MAT: DistTC Δ = %d, want %d", got.Triangles, want.Triangles)
	}
}

func TestDistTCRejectsDirected(t *testing.T) {
	g, _ := graph.Build(graph.Directed, 3, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := Run(g, Options{Ranks: 2}); err == nil {
		t.Fatal("DistTC accepted a directed graph")
	}
}

func TestDistTCSingleRankNoShadows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomUndirected(rng, 30, 120)
	got, err := Run(g, Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.ShadowArcs != 0 {
		t.Fatalf("1 rank shipped %d shadow arcs, want 0", got.ShadowArcs)
	}
	if got.ReplicationFactor != 1 {
		t.Fatalf("1-rank replication factor = %g, want 1", got.ReplicationFactor)
	}
}

func TestDistTCShadowsGrowWithRanks(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 3))
	var prev int64 = -1
	for _, ranks := range []int{2, 4, 8, 16} {
		got, err := Run(g, Options{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		if got.ShadowArcs <= 0 {
			t.Fatalf("%d ranks: no shadow arcs on a cut graph", ranks)
		}
		if got.ShadowArcs < prev {
			t.Fatalf("%d ranks: shadow arcs %d decreased below %d",
				ranks, got.ShadowArcs, prev)
		}
		prev = got.ShadowArcs
		if got.ReplicationFactor <= 1 {
			t.Fatalf("%d ranks: replication factor %g, want > 1", ranks, got.ReplicationFactor)
		}
	}
}

func TestDistTCPrecomputeDominates(t *testing.T) {
	// The paper's §I critique: the total running time becomes dominated
	// by the precomputation step, limiting scalability. Strong-scaling a
	// scale-free graph must show the precompute/compute ratio growing
	// with the rank count and crossing 1 once over-partitioned.
	g := gen.RMAT(gen.DefaultRMAT(11, 8, graph.Undirected, 5))
	prevRatio := 0.0
	for _, ranks := range []int{4, 8, 16, 32} {
		got, err := Run(g, Options{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		ratio := got.PrecomputeTime / got.ComputeTime
		if ratio < prevRatio {
			t.Fatalf("%d ranks: precompute/compute ratio %.2f fell below %.2f; expected monotone growth",
				ranks, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	got, err := Run(g, Options{Ranks: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got.PrecomputeTime <= got.ComputeTime {
		t.Fatalf("32 ranks: precompute %.0f ns <= compute %.0f ns; expected precompute-dominated",
			got.PrecomputeTime, got.ComputeTime)
	}
}

func TestDistTCCyclicScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomUndirected(rng, 50, 250)
	want := lcc.SharedLCC(g, intersect.MethodHybrid)
	got, err := Run(g, Options{Ranks: 4, Scheme: part.Cyclic})
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want.Triangles {
		t.Fatalf("cyclic: Δ = %d, want %d", got.Triangles, want.Triangles)
	}
}

func TestDistTCDeterministic(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 11))
	a, err := Run(g, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime || a.Triangles != b.Triangles || a.ShadowArcs != b.ShadowArcs {
		t.Fatalf("two identical runs diverged: (%g,%d,%d) vs (%g,%d,%d)",
			a.SimTime, a.Triangles, a.ShadowArcs, b.SimTime, b.Triangles, b.ShadowArcs)
	}
}

func TestMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic on a directed graph")
		}
	}()
	g, _ := graph.Build(graph.Directed, 3, []graph.Edge{{Src: 0, Dst: 1}})
	MustRun(g, Options{Ranks: 2})
}
