// Package disttc reimplements the DistTC baseline (Hoang et al., "DistTC:
// High Performance Distributed Triangle Counting", HPEC'19), the second
// comparator the paper discusses (§I, §V-C): instead of communicating
// during the computation, DistTC *precomputes and distributes shadow
// edges* — mirrored copies of the remote adjacency lists every rank will
// need — so the triangle-counting phase itself is communication-free.
//
// The paper's critique, which this simulation reproduces, is that the
// approach "leads to a low computation time but makes the total running
// time dominated by this pre-computation step, similarly limiting
// scalability" (§I). The precompute phase is a bulk-synchronous
// request–response exchange over the same p2p substrate TriC uses; the
// shadow volume grows with the edge cut, so over-partitioned scale-free
// graphs replicate a large fraction of the graph onto every rank.
package disttc

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/p2p"
	"repro/internal/part"
	"repro/internal/rma"
)

// Options configure a DistTC run.
type Options struct {
	Ranks int
	Model rma.CostModel
	// Workers bounds concurrent superstep execution on the host; 0
	// selects GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int
	// Scheme is the 1D vertex distribution (Block by default, matching
	// the repository's other engines; DistTC itself uses an edge-cut
	// minimizing policy, but the comparison holds the partitioning fixed
	// so only the communication strategy differs).
	Scheme part.Scheme
	// Faults installs a deterministic fault schedule on the exchange
	// substrate (see lcc.Options); dropped messages are retransmitted by
	// the sender, results are unchanged.
	Faults *fault.Spec
}

func (o Options) withDefaults() Options {
	if o.Ranks == 0 {
		o.Ranks = 1
	}
	if o.Model == (rma.CostModel{}) {
		o.Model = rma.DefaultCostModel()
	}
	return o
}

// Result is the output of a DistTC run.
type Result struct {
	LCC       []float64
	Triangles int64
	SimTime   float64 // slowest rank over the whole run, ns

	// PrecomputeTime is the simulated time of the shadow-edge phase
	// (request + response + install); ComputeTime is the local counting
	// phase. Their ratio is the paper's argument against the approach.
	PrecomputeTime float64
	ComputeTime    float64

	// ShadowArcs is the total number of mirrored adjacency entries
	// shipped across all ranks; ReplicationFactor is
	// (local + shadow arcs) / local arcs, the memory-overhead metric.
	ShadowArcs        int64
	ReplicationFactor float64

	Supersteps int
	PerRank    []p2p.Counters
}

// Run executes DistTC on an undirected graph with p ranks.
//
// Phases:
//  1. Orientation. Every rank derives the degree-ordered orientation of
//     its owned vertices locally (degrees of neighbours are readable from
//     the CSR partition exchange that built the distribution, so this
//     costs one scan — charged as compute).
//  2. Shadow precompute. For each owned vertex u and each v ∈ out(u)
//     owned remotely, the rank needs out(v). Ranks exchange request lists
//     and answer with the oriented adjacency lists (the "shadow edges").
//  3. Local counting. Each rank counts, for every owned u and v ∈ out(u),
//     |out(u) ∩ out(v)| using local or shadow lists only — no
//     communication, the defining property of DistTC.
//  4. Credit exchange. Per-vertex triangle credits for remote corners are
//     shipped to their owners (one aggregated message per peer) and the
//     global count is reduced.
func Run(g graph.Store, opt Options) (*Result, error) {
	if g.Kind() != graph.Undirected {
		return nil, fmt.Errorf("disttc: requires an undirected graph, got %v", g.Kind())
	}
	opt = opt.withDefaults()
	n := g.NumVertices()
	pt, err := part.Build(opt.Scheme, g, opt.Ranks)
	if err != nil {
		return nil, err
	}
	o, err := lcc.Orient(g)
	if err != nil {
		return nil, err
	}
	world := p2p.NewWorldWorkers(opt.Ranks, opt.Model, opt.Workers)
	world.SetFaults(opt.Faults)

	res := &Result{LCC: make([]float64, n)}
	perVertexT := make([]int64, n)

	// --- phase 1+2: request shadow lists --------------------------------
	type request []graph.V                 // vertex ids whose oriented lists are needed
	needed := make([][]graph.V, opt.Ranks) // per requesting rank: deduped remote refs
	world.Superstep(func(r *p2p.Rank) {
		// Dense dedup bitmap: one flat scan-friendly []bool beats a hash
		// map for the all-vertices key space, and needed keeps its
		// deterministic append order either way.
		seen := make([]bool, n)
		for li := 0; li < pt.Size(r.ID()); li++ {
			u := pt.VertexAt(r.ID(), li)
			outU := o.Out(u)
			r.Compute(len(outU)) // orientation scan
			for _, v := range outU {
				if pt.Owner(v) != r.ID() && !seen[v] {
					seen[v] = true
					needed[r.ID()] = append(needed[r.ID()], v)
				}
			}
		}
		// Deterministic request order, grouped by owner.
		sort.Slice(needed[r.ID()], func(i, j int) bool {
			return needed[r.ID()][i] < needed[r.ID()][j]
		})
		byOwner := make([]request, opt.Ranks)
		for _, v := range needed[r.ID()] {
			byOwner[pt.Owner(v)] = append(byOwner[pt.Owner(v)], v)
		}
		for dst, req := range byOwner {
			if len(req) > 0 {
				r.SendPayload(dst, req, 4*len(req))
			}
		}
	})

	// --- phase 2b: answer with shadow lists -----------------------------
	type shadowList struct {
		v   graph.V
		out []graph.V
	}
	type shadowBatch []shadowList
	wire := func(b shadowBatch) int {
		s := 0
		for _, sl := range b {
			s += 4 * (2 + len(sl.out)) // [v, len, data...]
		}
		return s
	}
	world.Superstep(func(r *p2p.Rank) {
		batches := make([]shadowBatch, opt.Ranks)
		for _, m := range r.Inbox() {
			req := m.Payload.(request)
			r.Compute(len(req))
			for _, v := range req {
				out := o.Out(v)
				batches[m.From] = append(batches[m.From], shadowList{v: v, out: out})
				r.Compute(len(out)) // staging copy
			}
		}
		for dst, b := range batches {
			if len(b) > 0 {
				r.SendPayload(dst, b, wire(b))
			}
		}
	})

	// --- phase 2c: install shadows, then count locally ------------------
	shadow := make([]map[graph.V][]graph.V, opt.Ranks)
	shadowArcs := make([]int64, opt.Ranks) // per rank: bodies run concurrently
	world.Superstep(func(r *p2p.Rank) {
		shadow[r.ID()] = make(map[graph.V][]graph.V)
		for _, m := range r.Inbox() {
			for _, sl := range m.Payload.(shadowBatch) {
				shadow[r.ID()][sl.v] = sl.out
				shadowArcs[r.ID()] += int64(len(sl.out))
				r.Compute(len(sl.out) + 2) // install copy
			}
		}
	})
	for _, a := range shadowArcs {
		res.ShadowArcs += a
	}
	res.PrecomputeTime = world.MaxClock()

	// --- phase 3: communication-free local counting ---------------------
	type credit struct {
		v graph.V
		t int64
	}
	type creditBatch []credit
	pendingCredits := make([][]map[graph.V]int64, opt.Ranks)
	for i := range pendingCredits {
		pendingCredits[i] = make([]map[graph.V]int64, opt.Ranks)
		for j := range pendingCredits[i] {
			pendingCredits[i][j] = make(map[graph.V]int64)
		}
	}
	outOf := func(rank int, v graph.V) []graph.V {
		if pt.Owner(v) == rank {
			return o.Out(v)
		}
		return shadow[rank][v]
	}
	world.Superstep(func(r *p2p.Rank) {
		its := intersect.GetScratch()
		defer intersect.PutScratch(its)
		addCredit := func(v graph.V, t int64) {
			if owner := pt.Owner(v); owner != r.ID() {
				pendingCredits[r.ID()][owner][v] += t
			} else {
				perVertexT[v] += t
			}
		}
		var common []graph.V
		for li := 0; li < pt.Size(r.ID()); li++ {
			u := pt.VertexAt(r.ID(), li)
			outU := o.Out(u)
			for _, v := range outU {
				outV := outOf(r.ID(), v)
				// The scratch kernels count out(u) ∩ out(v) on the
				// host's fast path while charging the exact iteration
				// count of the plain Algorithm 2 merge this phase used
				// to inline; the credits walk the same ascending
				// common-neighbour order.
				var ops int
				common, ops = its.Elements(intersect.MethodSSI, outU, outV, common[:0])
				for _, w := range common {
					addCredit(u, 1)
					addCredit(v, 1)
					addCredit(w, 1)
				}
				r.Compute(ops + 2)
			}
		}
	})

	// --- phase 4: credit exchange + reduction ---------------------------
	world.Superstep(func(r *p2p.Rank) {
		for dst := 0; dst < opt.Ranks; dst++ {
			m := pendingCredits[r.ID()][dst]
			if len(m) == 0 {
				continue
			}
			batch := make(creditBatch, 0, len(m))
			for v, t := range m {
				batch = append(batch, credit{v: v, t: t})
			}
			sort.Slice(batch, func(i, j int) bool { return batch[i].v < batch[j].v })
			r.SendPayload(dst, batch, 12*len(batch)) // [v, t64] pairs
		}
	})
	world.Superstep(func(r *p2p.Rank) {
		for _, m := range r.Inbox() {
			for _, c := range m.Payload.(creditBatch) {
				perVertexT[c.v] += c.t
			}
			r.Compute(2 * len(m.Payload.(creditBatch)))
		}
	})

	partial := make([]int64, opt.Ranks)
	for v := 0; v < n; v++ {
		partial[pt.Owner(graph.V(v))] += perVertexT[v]
	}
	sumT := world.AllreduceSum(partial)
	// Under an acyclic orientation each triangle is found once and
	// credited once to each corner, so Σt = 3Δ regardless of direction
	// conventions.
	res.Triangles = sumT / 3
	for v := 0; v < n; v++ {
		res.LCC[v] = lcc.Score(graph.Undirected, perVertexT[v], g.OutDegree(graph.V(v)))
	}
	res.SimTime = world.MaxClock()
	res.ComputeTime = res.SimTime - res.PrecomputeTime
	res.Supersteps = world.Steps()
	localArcs := int64(g.NumEdges()) // oriented arcs = m
	if localArcs > 0 {
		res.ReplicationFactor = float64(localArcs+res.ShadowArcs) / float64(localArcs)
	}
	for _, r := range world.Ranks() {
		res.PerRank = append(res.PerRank, r.Counters())
	}
	return res, nil
}

// MustRun is Run for known-valid options; it panics on error.
func MustRun(g graph.Store, opt Options) *Result {
	r, err := Run(g, opt)
	if err != nil {
		panic(fmt.Sprintf("disttc: %v", err))
	}
	return r
}
