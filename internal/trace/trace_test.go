package trace

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
)

func TestRecorderCollectsPerRank(t *testing.T) {
	rec := NewRecorder(2)
	hook := rec.Hook()
	hook(0, 4)
	hook(0, 4)
	hook(1, 1)
	if got := rec.TotalReads(); got != 3 {
		t.Errorf("TotalReads = %d, want 3", got)
	}
	if len(rec.RankReads(0)) != 2 || len(rec.RankReads(1)) != 1 {
		t.Errorf("per-rank reads wrong: %v / %v", rec.RankReads(0), rec.RankReads(1))
	}
	counts := rec.Counts(6, -1)
	if counts[4] != 2 || counts[1] != 1 {
		t.Errorf("Counts = %v", counts)
	}
	only0 := rec.Counts(6, 0)
	if only0[1] != 0 || only0[4] != 2 {
		t.Errorf("rank-filtered Counts = %v", only0)
	}
}

func TestReuseHistogram(t *testing.T) {
	counts := []int{0, 3, 3, 1, 0, 1, 1}
	bins := ReuseHistogram(counts)
	// 3 vertices read once, 2 vertices read 3 times.
	if len(bins) != 2 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0].Repetitions != 1 || bins[0].Reads != 3 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	if bins[1].Repetitions != 3 || bins[1].Reads != 2 {
		t.Errorf("bin1 = %+v", bins[1])
	}
}

func TestConcentrationCurve(t *testing.T) {
	// One hub with 90 reads, nine vertices with 1, plus untouched ones.
	counts := make([]int, 20)
	counts[0] = 90
	for i := 1; i <= 9; i++ {
		counts[i] = 1
	}
	pts := ConcentrationCurve(counts, 10)
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	// First decile of targeted vertices (the hub) carries ~91% of reads.
	if pts[0].ReadFrac < 0.9 {
		t.Errorf("first point ReadFrac = %v, want >= 0.9", pts[0].ReadFrac)
	}
	last := pts[len(pts)-1]
	if math.Abs(last.ReadFrac-1) > 1e-9 || math.Abs(last.VertexFrac-1) > 1e-9 {
		t.Errorf("curve does not end at (1,1): %+v", last)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].ReadFrac < pts[i-1].ReadFrac || pts[i].VertexFrac < pts[i-1].VertexFrac {
			t.Errorf("curve not monotone at %d", i)
		}
	}
	if ConcentrationCurve(make([]int, 5), 4) != nil {
		t.Error("curve of all-zero counts should be nil")
	}
}

func TestEndToEndReuseOnFig1Graph(t *testing.T) {
	g := graph.MustBuild(graph.Undirected, 6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3},
		{Src: 1, Dst: 4}, {Src: 2, Dst: 4}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5},
	})
	rec := NewRecorder(2)
	_, err := lcc.Run(g, lcc.Options{
		Ranks: 2, Method: intersect.MethodHybrid, DoubleBuffer: true,
		OnRemoteRead: rec.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.Counts(6, 0)
	// Rank 0 (vertices 0-2) reads vertex 4 for the LCC of vertices 1 and 2
	// (Fig. 1's data-reuse example).
	if counts[4] < 2 {
		t.Errorf("vertex 4 read %d times by rank 0, want >= 2", counts[4])
	}
	bins := ReuseHistogram(counts)
	if len(bins) == 0 {
		t.Fatal("no reuse bins")
	}
}

func TestTopShareSeparatesDistributions(t *testing.T) {
	// Power-law graph: remote reads concentrate on high-degree vertices;
	// uniform graph: they don't (Fig. 4: 91.9% vs 11.7%).
	run := func(g *graph.Graph) float64 {
		rec := NewRecorder(8)
		if _, err := lcc.Run(g, lcc.Options{
			Ranks: 8, Method: intersect.MethodHybrid, DoubleBuffer: true,
			OnRemoteRead: rec.Hook(),
		}); err != nil {
			t.Fatal(err)
		}
		return TopShare(g, rec.Counts(g.NumVertices(), -1), 0.10)
	}
	rmat := run(gen.RMAT(gen.DefaultRMAT(11, 16, graph.Undirected, 31)))
	unif := run(gen.ErdosRenyi(1<<11, 1<<15, graph.Undirected, 32))
	if rmat < 0.5 {
		t.Errorf("R-MAT top-10%% share = %.2f, want high (paper: 0.92)", rmat)
	}
	if unif > 0.35 {
		t.Errorf("uniform top-10%% share = %.2f, want low (paper: 0.12)", unif)
	}
	if rmat <= unif {
		t.Errorf("R-MAT share %.2f not above uniform %.2f", rmat, unif)
	}
}

func TestDegreeScatterAndCorrelation(t *testing.T) {
	// Observation 3.1: accesses correlate with degree.
	g := gen.EgoNet(gen.DefaultEgoNet(11))
	rec := NewRecorder(2)
	if _, err := lcc.Run(g, lcc.Options{
		Ranks: 2, Method: intersect.MethodHybrid, DoubleBuffer: true,
		OnRemoteRead: rec.Hook(),
	}); err != nil {
		t.Fatal(err)
	}
	pts := DegreeScatter(g, rec.Counts(g.NumVertices(), -1))
	if len(pts) == 0 {
		t.Fatal("no scatter points")
	}
	for _, p := range pts {
		if p.EntrySize != 4*p.Degree {
			t.Fatalf("EntrySize %d != 4*Degree %d (Observation 3.1)", p.EntrySize, p.Degree)
		}
	}
	if r := Correlation(pts); r < 0.5 {
		t.Errorf("degree/access correlation = %.2f, want strong (Observation 3.1)", r)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if c := Correlation(nil); c != 0 {
		t.Errorf("Correlation(nil) = %v", c)
	}
	same := []DegreePoint{{Degree: 5, Accesses: 1}, {Degree: 5, Accesses: 2}}
	if c := Correlation(same); c != 0 {
		t.Errorf("Correlation with zero variance = %v, want 0", c)
	}
}
