// Package trace records and analyzes the remote-read traces of the LCC
// engine: which vertices each rank fetched over RMA. The paper uses these
// traces for its data-reuse analyses — the reuse histogram of Fig. 1
// (right), the top-degree concentration of Fig. 4, and the degree/reuse and
// degree/entry-size correlations of Fig. 5 (Observations 3.1 and 3.2).
package trace

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// Recorder collects remote-read events per rank. Each rank only appends to
// its own slice from its own goroutine, so no locking is needed; the
// aggregate views must be taken only after the run completes.
type Recorder struct {
	perRank [][]graph.V
}

// NewRecorder creates a recorder for p ranks.
func NewRecorder(p int) *Recorder {
	return &Recorder{perRank: make([][]graph.V, p)}
}

// Hook returns the callback to install as lcc.Options.OnRemoteRead.
func (rec *Recorder) Hook() func(rank int, v graph.V) {
	return func(rank int, v graph.V) {
		rec.perRank[rank] = append(rec.perRank[rank], v)
	}
}

// RankReads returns the targets read by one rank, in issue order.
func (rec *Recorder) RankReads(rank int) []graph.V { return rec.perRank[rank] }

// TotalReads returns the number of remote reads across all ranks.
func (rec *Recorder) TotalReads() int {
	total := 0
	for _, r := range rec.perRank {
		total += len(r)
	}
	return total
}

// Counts returns, for every vertex, how many times it was the target of a
// remote read (aggregated over ranks, or for a single rank if rank >= 0).
func (rec *Recorder) Counts(n, rank int) []int {
	counts := make([]int, n)
	for r, reads := range rec.perRank {
		if rank >= 0 && r != rank {
			continue
		}
		for _, v := range reads {
			counts[v]++
		}
	}
	return counts
}

// HistogramBin is one bar of the Fig. 1 (right) reuse histogram: Reads
// vertices were each fetched Repetitions times.
type HistogramBin struct {
	Repetitions int // how many times a target was re-read (y axis)
	Reads       int // number of distinct targets with that repetition count
}

// ReuseHistogram builds the Fig. 1 (right) plot data from per-vertex read
// counts: for each repetition count, how many remote targets were read that
// many times. Zero-count vertices are omitted.
func ReuseHistogram(counts []int) []HistogramBin {
	byRep := map[int]int{}
	for _, c := range counts {
		if c > 0 {
			byRep[c]++
		}
	}
	reps := make([]int, 0, len(byRep))
	for r := range byRep {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	out := make([]HistogramBin, len(reps))
	for i, r := range reps {
		out[i] = HistogramBin{Repetitions: r, Reads: byRep[r]}
	}
	return out
}

// CurvePoint is one point of the Fig. 4 concentration curve.
type CurvePoint struct {
	VertexFrac float64 // fraction of targeted vertices (x axis)
	ReadFrac   float64 // cumulative fraction of remote reads (y axis)
}

// ConcentrationCurve sorts targeted vertices by read count (descending) and
// returns the cumulative share of remote reads versus the share of
// vertices — Fig. 4's axes. points controls the curve resolution.
func ConcentrationCurve(counts []int, points int) []CurvePoint {
	var targeted []int
	total := 0
	for _, c := range counts {
		if c > 0 {
			targeted = append(targeted, c)
			total += c
		}
	}
	if total == 0 || len(targeted) == 0 {
		return nil
	}
	sort.Sort(sort.Reverse(sort.IntSlice(targeted)))
	if points < 2 {
		points = 2
	}
	out := make([]CurvePoint, 0, points)
	cum := 0
	next := 0
	for i, c := range targeted {
		cum += c
		for next < points && (i+1) >= (next+1)*len(targeted)/points {
			out = append(out, CurvePoint{
				VertexFrac: float64(i+1) / float64(len(targeted)),
				ReadFrac:   float64(cum) / float64(total),
			})
			next++
		}
	}
	return out
}

// TopShare returns the fraction of remote reads that target the top `frac`
// of the *highest in-degree* vertices — the number the paper highlights in
// Fig. 4 (91.9% for R-MAT, 11.7% for uniform at frac = 0.10).
func TopShare(g *graph.Graph, counts []int, frac float64) float64 {
	n := g.NumVertices()
	in := g.InDegrees()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in[order[a]] > in[order[b]] })
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	top, total := 0, 0
	for i, v := range order {
		total += counts[v]
		if i < k {
			top += counts[v]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// DegreePoint is one scatter point of Fig. 5: a vertex's degree against its
// remote-access count (C_offsets reuse) and its cache entry size in bytes
// (C_adj sizing).
type DegreePoint struct {
	Degree    int
	Accesses  int
	EntrySize int // bytes of the adjacency-list entry: 4·degree
}

// DegreeScatter builds Fig. 5's data for every remotely accessed vertex.
func DegreeScatter(g *graph.Graph, counts []int) []DegreePoint {
	var out []DegreePoint
	for v, c := range counts {
		if c == 0 {
			continue
		}
		d := g.OutDegree(graph.V(v))
		out = append(out, DegreePoint{Degree: d, Accesses: c, EntrySize: 4 * d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// Correlation returns the Pearson correlation between degree and access
// count over the scatter — the quantitative form of Observation 3.1 ("the
// number of accesses to a vertex correlates with its degree").
func Correlation(points []DegreePoint) float64 {
	n := float64(len(points))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, p := range points {
		x, y := float64(p.Degree), float64(p.Accesses)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy))
}
