// Storage-equivalence sweep: the golden pins of golden_test.go replayed
// over every host-side graph representation. The model plane addresses
// windows by plain-image byte coordinates regardless of how the host
// stores adjacency (DESIGN.md §9), so a run over a compressed or
// file-backed source store — and a run whose per-rank locals are
// varint/delta-compressed — must reproduce every pinned quantity bit for
// bit: SimTime float bits, triangle counts, LCC checksums, and the cache
// hit/miss counts asserted inside the "cached" configuration. Any drift
// means the storage plane leaked into the simulation.
package repro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lcc"
)

// goldenStores materializes the fb-sim golden graph in each source-store
// representation. The file-backed store round-trips through the versioned
// binary container in a temp dir.
func goldenStores(t *testing.T) []struct {
	name string
	st   graph.Store
} {
	t.Helper()
	g := gen.MustLoad("fb-sim")
	comp := graph.CompressGraph(g)

	path := filepath.Join(t.TempDir(), "fb-sim.lcg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinaryStore(f, comp); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fc, err := graph.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() })

	return []struct {
		name string
		st   graph.Store
	}{
		{"plain", g},
		{"compressed", comp},
		{"file", fc},
	}
}

// TestGoldenStorageEquivalence sweeps every golden configuration over the
// three source-store representations × {plain, compressed} per-rank
// locals, at several worker counts, against the single pinned table.
func TestGoldenStorageEquivalence(t *testing.T) {
	stores := goldenStores(t)
	workerCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		workerCounts = []int{1, 4}
	}
	for _, mode := range []lcc.StorageMode{lcc.StoragePlain, lcc.StorageCompressed} {
		mode := mode
		t.Run(fmt.Sprintf("locals=%s", mode), func(t *testing.T) {
			goldenStorage = mode
			defer func() { goldenStorage = 0 }()
			for _, src := range stores {
				src := src
				t.Run("src="+src.name, func(t *testing.T) {
					for _, wk := range workerCounts {
						// The full cross product × every worker count
						// would dominate the suite; workers are already
						// swept exhaustively on the plain path
						// (TestGoldenWorkerSweep), so each storage
						// combination runs the boundary counts.
						if wk != 1 && wk != workerCounts[len(workerCounts)-1] {
							continue
						}
						wk := wk
						t.Run(fmt.Sprintf("workers=%d", wk), func(t *testing.T) {
							for _, cfg := range goldenConfigs {
								checkGoldenRun(t, cfg.name, cfg.run(t, src.st, wk, nil), cfg.want)
							}
						})
					}
				})
			}
		})
	}
}

// TestSnapshotStorageBudget pins the budget knob end to end: an
// unconstrained snapshot extracts plain locals, a budget below the plain
// footprint flips the same snapshot build to compressed locals, and both
// serve bit-identical pulls.
func TestSnapshotStorageBudget(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	plain, err := lcc.NewSnapshotOpts(g, lcc.SnapshotOptions{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plain.StorageRepr() != "plain" {
		t.Fatalf("unbudgeted snapshot stored %q locals, want plain", plain.StorageRepr())
	}
	budget := plain.LocalBytes() - 1
	comp, err := lcc.NewSnapshotOpts(g, lcc.SnapshotOptions{Ranks: 4, MemBudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if comp.StorageRepr() != "compressed" {
		t.Fatalf("budget %d chose %q locals, want compressed", budget, comp.StorageRepr())
	}
	if comp.LocalBytes() >= plain.LocalBytes() {
		t.Fatalf("compressed locals occupy %d bytes, plain %d: no win", comp.LocalBytes(), plain.LocalBytes())
	}
	runGoldenConfig(t, "pull") // plain pins still hold after the sweep above
}
