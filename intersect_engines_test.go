// Engine-level guards for the cost-decoupled intersection layer
// (DESIGN.md §5): orientation assertions armed across every engine, and
// scratch-pool reuse under the worker sweep.
package repro_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/disttc"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/tric"
)

// TestEngineOrientation arms the binary-search orientation assertion
// (Binary does not swap its arguments on its own) and drives every engine
// through the kernels with every method, proving mis-orientation is
// impossible from engine code: the Count/Elements dispatchers always hand
// the shorter list to the keys side.
func TestEngineOrientation(t *testing.T) {
	intersect.SetDebugChecks(true)
	defer intersect.SetDebugChecks(false)

	g := gen.MustLoad("fb-sim")
	for _, m := range []intersect.Method{
		intersect.MethodSSI, intersect.MethodBinary, intersect.MethodHybrid, intersect.MethodHash,
	} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			lcc.SharedLCC(g, m)
			opt := lcc.Options{Ranks: 4, Method: m, DoubleBuffer: true}
			if _, err := lcc.Run(g, opt); err != nil {
				t.Fatal(err)
			}
			if _, err := lcc.RunPush(g, lcc.PushOptions{Options: opt, Aggregation: lcc.PushBatched}); err != nil {
				t.Fatal(err)
			}
			if _, err := lcc.RunReplicated(g, lcc.ReplicatedOptions{Options: opt, Replication: 2}); err != nil {
				t.Fatal(err)
			}
			if _, err := lcc.RunJaccard(g, opt); err != nil {
				t.Fatal(err)
			}
			if _, err := tric.Run(g, tric.Options{Ranks: 4, Method: m}); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := disttc.Run(g, disttc.Options{Ranks: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := grid.Run(g, grid.Options{Ranks: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestScratchReuseWorkerSweep guards the pooled per-rank scratches under
// real parallelism: at Workers ∈ {1, 2, 4, 8}, repeated engine runs must
// reuse the pool (bounded allocations after warm-up) and stay bit-exact
// run over run — a stale stamp or a scratch shared across ranks would
// change counts or trip the race detector.
func TestScratchReuseWorkerSweep(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	workerCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		workerCounts = []int{1, 4}
	}
	for _, wk := range workerCounts {
		wk := wk
		t.Run(fmt.Sprintf("workers=%d", wk), func(t *testing.T) {
			opt := lcc.Options{Ranks: 4, Workers: wk, Method: intersect.MethodHybrid, DoubleBuffer: true}
			base, err := lcc.Run(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			res, err := lcc.Run(g, opt)
			runtime.ReadMemStats(&m1)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := math.Float64bits(res.SimTime), math.Float64bits(base.SimTime); got != want {
				t.Errorf("SimTime bits changed across runs: %#x vs %#x", got, want)
			}
			if res.Triangles != base.Triangles {
				t.Errorf("Triangles changed across runs: %d vs %d", res.Triangles, base.Triangles)
			}
			// The budget matches TestEngineFetchAllocFree: setup only, no
			// per-intersection or per-scratch growth — the pool must hand
			// back warmed instances at every worker count.
			if allocs := m1.Mallocs - m0.Mallocs; allocs > 5000 {
				t.Errorf("second run allocated %d objects, budget 5000: scratch pool reuse broken", allocs)
			}
		})
	}
}
