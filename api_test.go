package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro"
)

func TestFacadeBuildAndRun(t *testing.T) {
	g, err := repro.BuildGraph(repro.Undirected, 4, []repro.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunLCC(g, repro.LCCOptions{Ranks: 2, Method: repro.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 1 {
		t.Errorf("Triangles = %d, want 1", res.Triangles)
	}
	ref := repro.SharedLCC(g, repro.MethodHybrid)
	for v := range res.LCC {
		if math.Abs(res.LCC[v]-ref.LCC[v]) > 1e-12 {
			t.Errorf("LCC[%d] = %v, ref %v", v, res.LCC[v], ref.LCC[v])
		}
	}
}

func TestFacadeTriCAgrees(t *testing.T) {
	g := repro.RMAT(9, 8, repro.Undirected, 3)
	g = repro.Prepare(g, 1)
	a, err := repro.RunLCC(g, repro.LCCOptions{Ranks: 4, Method: repro.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := repro.RunTriC(g, repro.TriCOptions{Ranks: 4, Method: repro.MethodHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if a.Triangles != b.Triangles {
		t.Errorf("async %d vs TriC %d", a.Triangles, b.Triangles)
	}
}

func TestFacadeDatasets(t *testing.T) {
	names := repro.DatasetNames()
	if len(names) < 10 {
		t.Fatalf("only %d datasets registered", len(names))
	}
	g, err := repro.LoadDataset("fb-sim")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Error("empty dataset")
	}
	if _, err := repro.LoadDataset("bogus"); err == nil {
		t.Error("LoadDataset accepted unknown name")
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := repro.ErdosRenyi(128, 512, repro.Undirected, 9)
	var buf bytes.Buffer
	if err := repro.WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := repro.ReadBinaryGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Error("binary round-trip changed the graph")
	}

	el := "0 1\n1 2\n2 0\n"
	g3, err := repro.ReadEdgeList(bytes.NewBufferString(el), repro.Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if repro.SharedLCC(g3, repro.MethodHybrid).Triangles != 1 {
		t.Error("edge-list triangle lost")
	}
}

func TestFacadeCostModel(t *testing.T) {
	m := repro.DefaultCostModel()
	if m.RemoteLatency != 2000 {
		t.Errorf("default α = %v ns, want 2000 (the paper's Aries figure)", m.RemoteLatency)
	}
	// A custom model flows through to results: zero-cost network makes
	// remote reads free, halving-ish the simulated time.
	g := repro.BarabasiAlbert(512, 8, repro.Undirected, 4)
	g = repro.Prepare(g, 2)
	slow, err := repro.RunLCC(g, repro.LCCOptions{Ranks: 4, Method: repro.MethodHybrid, DoubleBuffer: true, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	fast := m
	fast.RemoteLatency = 1
	fast.RemoteBytePeriod = 0
	quick, err := repro.RunLCC(g, repro.LCCOptions{Ranks: 4, Method: repro.MethodHybrid, DoubleBuffer: true, Model: fast})
	if err != nil {
		t.Fatal(err)
	}
	if quick.SimTime >= slow.SimTime {
		t.Errorf("faster network did not reduce simulated time: %v vs %v", quick.SimTime, slow.SimTime)
	}
	if quick.Triangles != slow.Triangles {
		t.Error("cost model changed the computed result")
	}
}
