GO ?= go

.PHONY: all build test vet fmt check bench bench-serve bench-scale benchdiff serve-smoke serve-restart-smoke chaos-smoke stress pprof fuzz

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

check: fmt vet build test

# bench runs the hot-path micro-benchmarks with -benchmem and appends the
# next BENCH_<n>.json perf-trajectory record (see bench.sh).
bench:
	./bench.sh

# bench-serve appends the next serving-layer record: the sustained-QPS
# benchmark through the supervision plane, tagged "mode":"serve" so
# benchdiff never diffs it against the micro-benchmark trajectory.
bench-serve:
	BENCH_MODE=serve ./bench.sh

# bench-scale appends the next storage-plane scale record: a scale-series
# dataset (~100× the golden suite) materialized through the graph disk
# cache, recording edges, bytes on disk, compression ratio, load time and
# RSS peak, tagged "mode":"scale" (cmd/scalebench). First run generates
# the dataset into .graph-cache — minutes for half a billion edges.
bench-scale:
	BENCH_MODE=scale ./bench.sh

# benchdiff compares the two newest committed BENCH_<n>.json records that
# share a bench mode and fails on per-benchmark regressions past the
# thresholds (cmd/benchdiff).
benchdiff:
	$(GO) run ./cmd/benchdiff

# serve-smoke boots the lccd daemon on an ephemeral port, loads fb-sim
# over its HTTP API, runs one supervised query, checks health, drains and
# exits — the end-to-end serving-layer check CI runs.
serve-smoke:
	$(GO) run ./cmd/lccd -smoke

# serve-restart-smoke is the crash-recovery lane: it boots a real lccd
# daemon with a state dir, loads fb-sim and takes a golden reading, kills
# the daemon with SIGKILL (no drain — the crash-stop case), restarts it,
# and asserts the instance recovers from its manifest and the same query
# returns bit-identical SimTime/Triangles/ScoreBits.
serve-restart-smoke:
	$(GO) run ./cmd/lccd -restart-smoke

# chaos-smoke is the self-healing lane (DESIGN.md §10): a seeded campaign
# of kill/restart, manifest and graph-cache corruption, request storms and
# wedge-induced stalls against a real re-exec'd lccd daemon. After every
# cycle the daemon must answer, every rejection must carry a typed reason,
# and the golden query must return bit-identical pinned results.
chaos-smoke:
	$(GO) run ./cmd/lccd -chaos-smoke

# stress hammers the serving layer's lifecycle machinery under the race
# detector: repeated cancellation, panic isolation and transition-edge
# runs across the scheduler and supervision plane.
stress:
	$(GO) test -race -run 'Lifecycle|Cancel|Panic' -count=10 ./internal/serve ./internal/sched

# pprof captures and symbolizes a CPU profile of the end-to-end non-cached
# engine benchmark, so perf PRs start from evidence instead of guesses.
# Artifacts: repro.test + cpu.pprof (git-ignored working files); drill
# further with `go tool pprof repro.test cpu.pprof`.
pprof:
	$(GO) test -run '^$$' -bench '^BenchmarkEngineNonCached$$' -benchtime 3x \
		-cpuprofile cpu.pprof -o repro.test .
	$(GO) tool pprof -top -nodecount 25 repro.test cpu.pprof

# fuzz runs the intersection-kernel, varint-codec and fault-schedule
# fuzzers briefly — the same smokes CI runs.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzIntersectKernels$$' -fuzztime 30s ./internal/intersect
	$(GO) test -run '^$$' -fuzz '^FuzzVarintAdjacency$$' -fuzztime 30s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzFaultSchedule$$' -fuzztime 30s .
