GO ?= go

.PHONY: all build test vet fmt check bench benchdiff

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

check: fmt vet build test

# bench runs the hot-path micro-benchmarks with -benchmem and appends the
# next BENCH_<n>.json perf-trajectory record (see bench.sh).
bench:
	./bench.sh

# benchdiff compares the two newest committed BENCH_<n>.json records and
# fails on per-benchmark regressions past the thresholds (cmd/benchdiff).
benchdiff:
	$(GO) run ./cmd/benchdiff
