// Package repro is a from-scratch Go reproduction of "Asynchronous
// Distributed-Memory Triangle Counting and LCC with RMA Caching" (Strausz,
// Vella, Di Girolamo, Besta, Hoefler — IPDPS 2022, arXiv:2202.13976).
//
// The package is the public facade over the internal subsystems:
//
//   - internal/graph — CSR graph core, I/O, preprocessing (§II-B), and
//     the storage plane: plain, varint/delta-compressed and file-backed
//     CSR behind one Store contract, plus the versioned checksummed
//     binary container (DESIGN.md §9)
//   - internal/gen — deterministic dataset generators (Table II
//     stand-ins) with a binary disk cache for the large scale series
//   - internal/part — 1D block and cyclic vertex distribution (§III-A)
//   - internal/rma — simulated MPI-3 RMA runtime with per-rank clocks (§II-E)
//   - internal/p2p — simulated two-sided MPI / BSP substrate (TriC baseline)
//   - internal/clampi — the CLaMPI RMA caching layer, reimplemented, with
//     the paper's application-defined eviction scores (§II-F, §III-B)
//   - internal/fault — deterministic, seeded fault schedules injected
//     into the substrates (DESIGN.md §7)
//   - internal/intersect — binary search, SSI, hybrid and hash kernels
//     (§II-C, §III-C, §V-A), split into a model plane (the reference
//     Algorithm 1/2 loops whose iteration counts define the simulated
//     compute charge) and a host plane (per-rank Scratch kernels —
//     branch-free merge, stamp-set bitmap, galloping finger replay —
//     that produce identical counts and charges much faster; DESIGN.md §5)
//   - internal/lcc — the paper's contribution: fully asynchronous
//     distributed TC/LCC over RMA with caching (§III); shared-memory
//     kernels, the Schank–Wagner forward algorithm and orientations (§V);
//     distributed Jaccard and the push-mode engine (future work ii);
//     static vertex delegation (the abstract's framing, as an oracle
//     baseline) and the replicated-groups 1.5D engine (future work i)
//   - internal/grid — future work (i): the asynchronous 2D block engine
//   - internal/spmat — algebraic triangle counting, C = L·U ∘ A (§V-B)
//   - internal/tric — the TriC query-response baseline (§IV-B)
//   - internal/disttc — the DistTC shadow-edge baseline (§I)
//   - internal/experiments — regenerates every table and figure of §IV
//     plus the A1–A13 ablations
//   - internal/serve — the supervised serving layer: long-lived instances
//     over a shared graph snapshot, with run deadlines, cancellation,
//     panic isolation, priority admission queueing, memory-budgeted LRU
//     parking and manifest-backed restart recovery (DESIGN.md §8), plus
//     the self-healing plane: background integrity scrubbing with a
//     quarantine/auto-reload cycle, a per-run stall watchdog, and
//     server-wide load shedding (DESIGN.md §10)
//
// Quick start:
//
//	g := repro.MustLoadDataset("fb-sim")
//	res, err := repro.RunLCC(g, repro.LCCOptions{
//		Ranks:        8,
//		Workers:      0, // host cores running the ranks; 0 = GOMAXPROCS
//		Method:       repro.MethodHybrid,
//		DoubleBuffer: true,
//		Caching:      true,
//	})
//
// Large graphs load instead of regenerate: enable the disk cache and
// every dataset persists to the versioned, per-section-checksummed binary
// container on first generation. The engines accept any GraphStore —
// plain CSR, varint/delta-compressed CSR (~3× smaller), or a file-backed
// CSR mapped straight from the container — and simulated results are
// bit-identical regardless of representation (DESIGN.md §9):
//
//	repro.SetGraphCacheDir(".graph-cache") // or LCC_GRAPH_CACHE=...
//	st, err := repro.LoadDatasetStore("rmat-s21-ef256", 8<<30) // cheapest form under 8 GiB
//	res, err := repro.RunLCC(st, repro.LCCOptions{
//		Ranks:   64,
//		Caching: true,
//		Storage: repro.StorageCompressed, // per-rank locals stay compressed too
//	})
//
// For repeated queries against one distribution, build the immutable
// setup once and run it supervised — or start the daemon and drive it
// over HTTP:
//
//	inst := repro.NewServeInstance("fb", repro.ServeConfig{
//		Dataset: "fb-sim", Ranks: 8, MaxConcurrent: 2,
//		StallTimeout: time.Minute, // watchdog: force-cancel wedged runs
//	})
//	_ = inst.Start()
//	res, err := inst.Run(ctx, repro.ServeQuery{
//		Options: repro.LCCOptions{Method: repro.MethodHybrid, DoubleBuffer: true},
//		Timeout: 30 * time.Second,
//	})
//
//	$ go run ./cmd/lccd -state-dir /var/lib/lccd &
//	$ curl -d '{"name":"fb","dataset":"fb-sim","ranks":8,"queue_depth":8}' localhost:8090/v1/load
//	$ curl -d '{"instance":"fb","method":"hybrid","timeout_ms":30000,"priority":1}' localhost:8090/v1/run
//	$ curl localhost:8090/v1/health
//	$ kill -9 %1 && go run ./cmd/lccd -state-dir /var/lib/lccd &  # fleet recovers
//	$ curl localhost:8090/v1/ps   # instance is back (parked), first query reloads it
//
// A run canceled by its context or deadline unwinds the simulated ranks
// at their next checkpoint (errors.Is(err, repro.ErrRunCanceled)); an
// engine-goroutine panic becomes a typed *repro.PanicError that fails the
// run, flips the instance unhealthy and leaves the process serving; the
// next query after either reproduces the golden pins bit for bit
// (DESIGN.md §8). With a queue (ServeConfig.QueueDepth), overload waits
// bounded by ServeQuery.Priority/QueueTimeout instead of bouncing; with a
// state dir, instances persist checksummed manifests and survive daemon
// restarts — including kill -9 — with bit-identical results.
//
// The serving plane also heals itself (DESIGN.md §10). ServeConfig's
// StallTimeout (stall_timeout_ms over HTTP) arms a per-run watchdog on a
// scheduler-level progress counter: a run making no progress for the
// full window is force-canceled with a typed *repro.ServeStallError
// (errors.Is(err, repro.ErrServeStalled)) carrying per-rank progress and
// goroutine stacks — distinct from a deadline, which stays
// ErrRunCanceled. Snapshots carry per-rank CRC-32C sums; the daemon's
// background scrubber (lccd -scrub-period) re-verifies idle instances
// and, on a mismatch, quarantines and auto-reloads them so no query ever
// computes over corrupt bits. Server-wide admission sheds overload with
// typed reasons: a global run cap (lccd -run-cap, HTTP 429 "run-cap")
// and a resident-memory brownout for new loads when the budget is
// exhausted and nothing is evictable (HTTP 503 "memory-brownout").
// `make chaos-smoke` drives a real daemon through seeded kill/corrupt/
// storm/stall campaigns asserting none of this ever loses a run or
// perturbs a pinned bit.
//
// Simulated ranks execute on real goroutines under a deterministic
// multicore scheduler (internal/sched): Workers bounds how many run
// concurrently, host wall-clock scales with cores, and every simulated
// result is bit-identical at any worker count — the golden tests sweep
// Workers ∈ {1, 2, 4, 8} to pin exactly that (DESIGN.md §4).
//
// There is no MPI for Go and this reproduction targets a single machine, so
// the distributed runtime is a simulation: ranks are goroutines with
// independent simulated clocks and every remote read charges the α + s·β
// network model the paper itself uses (§IV-D-1). DESIGN.md documents each
// substitution; EXPERIMENTS.md records paper-vs-measured for every table
// and figure.
//
// The simulated hot path is allocation-free. RMA windows come in four
// kinds: writable byte windows keep snapshot-copy Gets (they are the
// regions peers write), while read-only windows — including the typed
// uint64/vertex windows the engines expose graph data through — serve
// every Get as an aliased view of the window region, and requests are
// recycled through per-rank free lists (issue → flush → data → Release).
// The aliasing contract is specified in DESIGN.md §2, and golden_test.go
// pins that this substrate change left every simulated result — SimTime,
// counters, LCC scores, triangle counts — bit-identical to the copying
// implementation.
//
// The same decoupling governs host compute: every engine routes its
// set intersections through a pooled per-rank intersect.Scratch whose
// fast kernels report the exact Algorithm 1/2 iteration counts the
// reference loops would have executed, so SimTime stays bit-identical
// while host wall-clock does not pay for the simulation's bookkeeping
// (DESIGN.md §5; differential and fuzz tests enforce the equivalence).
//
// The fetch pipeline completes the decoupling with a charge tape: every
// simulated cost is a (kind, bytes) descriptor in one canonical per-rank
// sequence, folded into the float clock at pinned points, which frees the
// host side of a fetch — lookahead-k edge staging, precomputed resolve
// tables, inline cache hits served as window views without materializing
// a request, caller-owned value requests — to be flat straight-line code.
// An op-for-op equivalence test replays every golden configuration under
// deferred folding and diffs the full charge sequences (DESIGN.md §6).
//
// A deterministic fault plane rides the same machinery: Options.Faults (or
// lccrun -faults) installs a seeded schedule of transient RMA failures,
// latency spikes, stall windows, dropped exchange messages and cache
// unavailability, recovered by retry with capped exponential backoff,
// sender-side retransmission and graceful cache degradation to direct RMA.
// Faults cost simulated time, never correctness: results stay bit-identical
// to the fault-free run and the faulted SimTime is itself reproducible at
// any worker count (DESIGN.md §7; TestFaultEquivalence pins it).
package repro
