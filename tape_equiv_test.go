// Charge-tape equivalence: the contract of DESIGN.md §6 is that a rank's
// charges form one canonical per-rank sequence, and that deferring their
// folds to the observation points (rma.Comm.SetDeferredCharges) replays
// exactly the sequence the default mode applies at the canonical points —
// same kinds, same byte counts, same raw durations, and bit-identical
// folded clock values, op for op. These tests record both schedules with a
// ChargeObserver for every golden engine configuration and diff them
// entry by entry, so any host-side reordering that leaks into the model —
// a hoisted issue, a dropped fold point, a noise draw out of sequence —
// fails with the first divergent opcode rather than as an opaque SimTime
// mismatch.
package repro_test

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/lcc"
	"repro/internal/rma"
)

// chargeRec is one observed charge of one rank, in canonical order.
type chargeRec struct {
	kind  rma.ChargeKind
	bytes int
	ns    float64
	now   float64 // rank clock immediately after the fold
}

// chargeLog collects per-rank charge sequences. Rank r's goroutine is the
// only writer of seq[r], so no locking is needed.
type chargeLog struct {
	seq [][]chargeRec
}

func newChargeLog(ranks int) *chargeLog {
	return &chargeLog{seq: make([][]chargeRec, ranks)}
}

func (l *chargeLog) observer() rma.ChargeObserver {
	return func(rank int, kind rma.ChargeKind, bytes int, ns, now float64) {
		l.seq[rank] = append(l.seq[rank], chargeRec{kind: kind, bytes: bytes, ns: ns, now: now})
	}
}

// diffChargeLogs asserts the two logs are identical op for op; the clock
// values are compared as float bits.
func diffChargeLogs(t *testing.T, name string, ref, tape *chargeLog) {
	t.Helper()
	if len(ref.seq) != len(tape.seq) {
		t.Fatalf("%s: rank count differs: %d vs %d", name, len(ref.seq), len(tape.seq))
	}
	for r := range ref.seq {
		a, b := ref.seq[r], tape.seq[r]
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if a[i].kind != b[i].kind || a[i].bytes != b[i].bytes || a[i].ns != b[i].ns ||
				math.Float64bits(a[i].now) != math.Float64bits(b[i].now) {
				t.Fatalf("%s: rank %d op %d diverges:\n  canonical: %v %d bytes ns=%v now=%x\n  deferred:  %v %d bytes ns=%v now=%x",
					name, r, i,
					a[i].kind, a[i].bytes, a[i].ns, math.Float64bits(a[i].now),
					b[i].kind, b[i].bytes, b[i].ns, math.Float64bits(b[i].now))
			}
		}
		if len(a) != len(b) {
			t.Fatalf("%s: rank %d charge count differs: canonical %d vs deferred %d (first %d identical)",
				name, r, len(a), len(b), n)
		}
	}
}

// tapeEquivConfigs mirrors the golden configurations (golden_test.go) with
// the charge-plane hooks threaded through: run executes the engine with
// the given observer and fold schedule and returns the run's SimTime.
var tapeEquivConfigs = []struct {
	name string
	run  func(t *testing.T, g *graph.Graph, obs rma.ChargeObserver, deferred bool) float64
}{
	{"pull", func(t *testing.T, g *graph.Graph, obs rma.ChargeObserver, deferred bool) float64 {
		opt := goldenBase()
		opt.ChargeObserver, opt.DeferredCharges = obs, deferred
		res, err := lcc.Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}},
	{"cached", func(t *testing.T, g *graph.Graph, obs rma.ChargeObserver, deferred bool) float64 {
		opt := goldenBase()
		opt.Caching = true
		opt.OffsetsCacheBytes = 1 << 14
		opt.AdjCacheBytes = 1 << 16
		opt.AdjScorePolicy = lcc.ScoreDegree
		opt.ChargeObserver, opt.DeferredCharges = obs, deferred
		res, err := lcc.Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}},
	{"noise", func(t *testing.T, g *graph.Graph, obs rma.ChargeObserver, deferred bool) float64 {
		opt := goldenBase()
		opt.Model = rma.DefaultCostModel()
		opt.Model.Noise = rma.NoiseSpec{Amp: 0.3, SpikePeriodNS: 1e6, SpikeNS: 2e4, Seed: 42}
		opt.ChargeObserver, opt.DeferredCharges = obs, deferred
		res, err := lcc.Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}},
	{"push", func(t *testing.T, g *graph.Graph, obs rma.ChargeObserver, deferred bool) float64 {
		opt := goldenBase()
		opt.ChargeObserver, opt.DeferredCharges = obs, deferred
		res, err := lcc.RunPush(g, lcc.PushOptions{Options: opt, Aggregation: lcc.PushBatched})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}},
	{"replicated", func(t *testing.T, g *graph.Graph, obs rma.ChargeObserver, deferred bool) float64 {
		opt := goldenBase()
		opt.ChargeObserver, opt.DeferredCharges = obs, deferred
		res, err := lcc.RunReplicated(g, lcc.ReplicatedOptions{Options: opt, Replication: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}},
	{"jaccard", func(t *testing.T, g *graph.Graph, obs rma.ChargeObserver, deferred bool) float64 {
		opt := goldenBase()
		opt.ChargeObserver, opt.DeferredCharges = obs, deferred
		res, err := lcc.RunJaccard(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}},
	{"grid", func(t *testing.T, g *graph.Graph, obs rma.ChargeObserver, deferred bool) float64 {
		res, err := grid.Run(g, grid.Options{Ranks: 4, ChargeObserver: obs, DeferredCharges: deferred})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}},
}

// TestChargeTapeEquivalence runs every golden configuration twice — once
// folding each charge at its canonical point (the direct-AdvanceBy
// reference) and once on the deferred tape — and diffs the recorded charge
// sequences op for op: kind, bytes, raw duration, and the folded clock's
// float bits. Proves the tape preserves the canonical fold order exactly.
func TestChargeTapeEquivalence(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	const ranks = 4
	for _, cfg := range tapeEquivConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			ref := newChargeLog(ranks)
			simRef := cfg.run(t, g, ref.observer(), false)
			tape := newChargeLog(ranks)
			simTape := cfg.run(t, g, tape.observer(), true)
			if math.Float64bits(simRef) != math.Float64bits(simTape) {
				t.Errorf("%s: SimTime bits differ: canonical %x vs deferred %x",
					cfg.name, math.Float64bits(simRef), math.Float64bits(simTape))
			}
			total := 0
			for _, s := range ref.seq {
				total += len(s)
			}
			if total == 0 {
				t.Fatalf("%s: observer recorded no charges", cfg.name)
			}
			diffChargeLogs(t, cfg.name, ref, tape)
		})
	}
}

// TestChargeTapeObserverMatchesGolden anchors the observed sequences to
// the pinned results: an observed run must still reproduce the golden
// SimTime bits (observation must not perturb the model).
func TestChargeTapeObserverMatchesGolden(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	log := newChargeLog(4)
	opt := goldenBase()
	opt.ChargeObserver = log.observer()
	res, err := lcc.Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	const wantBits = 0x419e343dbb9986d8 // golden "pull" SimTime pin
	if got := math.Float64bits(res.SimTime); got != wantBits {
		t.Errorf("observed run SimTime bits = %#x, want %#x", got, wantBits)
	}
	// Sanity: the sequence is non-trivial and its last fold lands at the
	// slowest rank's finish time.
	maxNow := 0.0
	for _, s := range log.seq {
		if len(s) == 0 {
			t.Fatal("a rank recorded no charges")
		}
		if now := s[len(s)-1].now; now > maxNow {
			maxNow = now
		}
	}
	if maxNow > res.SimTime {
		t.Errorf("last observed fold (%v) exceeds SimTime (%v)", maxNow, res.SimTime)
	}
}
