// Command benchdiff compares the repository's two newest perf-trajectory
// records (BENCH_<n>.json, emitted by bench.sh / make bench) and prints the
// per-benchmark deltas in ns/op and allocs/op. It exits non-zero when any
// benchmark regressed past the threshold, so CI fails visibly when a change
// walks back a hot-path win.
//
// Usage:
//
//	benchdiff [-dir .] [-max-regress 0.15] [-summary] [old.json new.json]
//
// With explicit file arguments the directory scan is skipped. ns/op noise
// on shared machines is real, so the default threshold is deliberately
// loose for time and strict for allocations (alloc counts are exact and
// deterministic; any increase above the slack is a structural regression).
//
// -summary switches the output to a GitHub-flavoured markdown delta table
// (CI appends it to $GITHUB_STEP_SUMMARY, so per-PR perf movement is
// visible on the run page without opening artifacts). Exit semantics are
// unchanged: regressions past the thresholds still fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type record struct {
	Date       string      `json:"date"`
	GoMaxProcs int         `json:"go_max_procs"` // 0 in records predating the field
	CPUModel   string      `json:"cpu_model"`
	Faults     string      `json:"faults"` // "" in records predating the fault plane — meaning off
	Mode       string      `json:"mode"`   // "" in records predating the serving layer — meaning micro
	Benchmarks []benchmark `json:"benchmarks"`
}

// faultMode normalizes the provenance field: records written before the
// fault plane existed carry no "faults" key, and bench.sh always measures
// with injection disabled, so the empty string reads as "off".
func (r *record) faultMode() string {
	if r.Faults == "" {
		return "off"
	}
	return r.Faults
}

// benchMode normalizes the measurement-plane tag: "micro" records measure
// substrate hot paths, "serve" records measure saturated per-query latency
// through the supervision plane (bench.sh BENCH_MODE=serve). Records
// written before the field existed are micro.
func (r *record) benchMode() string {
	if r.Mode == "" {
		return "micro"
	}
	return r.Mode
}

type benchmark struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json records")
	maxRegress := flag.Float64("max-regress", 0.15, "fail when ns/op grows more than this fraction")
	allocSlack := flag.Float64("alloc-slack", 0.10, "fail when allocs/op grows more than this fraction (plus 16 absolute)")
	summary := flag.Bool("summary", false, "print a markdown delta table (for $GITHUB_STEP_SUMMARY) instead of the plain report")
	flag.Parse()

	var oldPath, newPath string
	if flag.NArg() == 2 {
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	} else if flag.NArg() == 0 {
		var err error
		oldPath, newPath, err = newestPair(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	} else {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-dir .] [old.json new.json]")
		os.Exit(2)
	}

	oldRec, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRec, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	// A record taken under fault injection measures recovery machinery,
	// not the hot path; diffing it against a fault-free record would read
	// as a huge phantom regression (or improvement). Refuse outright.
	if oldRec.faultMode() != newRec.faultMode() {
		fmt.Fprintf(os.Stderr, "benchdiff: fault modes differ (%s: %q, %s: %q): records are not comparable\n",
			filepath.Base(oldPath), oldRec.faultMode(), filepath.Base(newPath), newRec.faultMode())
		os.Exit(2)
	}

	// Micro records (substrate hot paths) and serve records (saturated
	// per-query latency through the supervision plane) measure different
	// quantities under different load shapes; a cross-mode diff is never a
	// regression signal. Refuse outright.
	if oldRec.benchMode() != newRec.benchMode() {
		fmt.Fprintf(os.Stderr, "benchdiff: bench modes differ (%s: %q, %s: %q): records are not comparable\n",
			filepath.Base(oldPath), oldRec.benchMode(), filepath.Base(newPath), newRec.benchMode())
		os.Exit(2)
	}

	oldBy := map[string]benchmark{}
	for _, b := range oldRec.Benchmarks {
		oldBy[b.Name] = b
	}
	names := make([]string, 0, len(newRec.Benchmarks))
	newBy := map[string]benchmark{}
	for _, b := range newRec.Benchmarks {
		newBy[b.Name] = b
		names = append(names, b.Name)
	}
	sort.Strings(names)

	// Engine wall-clock scales with host parallelism (the rank scheduler
	// runs simulated ranks on real goroutines), so ns/op is only
	// meaningful between records taken at the same GOMAXPROCS — including
	// records predating the field (go_max_procs 0, an undeclared
	// environment), which only match each other. Alloc counts are
	// parallelism-independent and always compared.
	timesComparable := oldRec.GoMaxProcs == newRec.GoMaxProcs

	if *summary {
		fmt.Printf("### benchdiff `%s` → `%s`\n\n", filepath.Base(oldPath), filepath.Base(newPath))
		if !timesComparable {
			fmt.Printf("_go\\_max\\_procs differ (%d → %d): allocs enforced, ns/op informational._\n\n",
				oldRec.GoMaxProcs, newRec.GoMaxProcs)
		}
		fmt.Println("| benchmark | ns/op (old) | ns/op (new) | Δ ns/op | allocs (old) | allocs (new) | Δ allocs | |")
		fmt.Println("|---|---:|---:|---:|---:|---:|---:|---|")
	} else {
		fmt.Printf("benchdiff %s -> %s\n", filepath.Base(oldPath), filepath.Base(newPath))
		if !timesComparable {
			fmt.Printf("go_max_procs differ (%d -> %d): comparing allocs only, ns/op is informational\n",
				oldRec.GoMaxProcs, newRec.GoMaxProcs)
		}
		fmt.Printf("%-28s %14s %14s %8s   %12s %12s %8s\n",
			"benchmark", "ns/op(old)", "ns/op(new)", "Δ%", "allocs(old)", "allocs(new)", "Δ")
	}
	failed := false
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok {
			if *summary {
				fmt.Printf("| %s | – | %.1f | – | – | %.0f | – | new |\n", name, nb.NsPerOp, nb.AllocsOp)
			} else {
				fmt.Printf("%-28s %14s %14.1f %8s   %12s %12.0f %8s   (new)\n",
					name, "-", nb.NsPerOp, "-", "-", nb.AllocsOp, "-")
			}
			continue
		}
		nsDelta := 0.0
		if ob.NsPerOp > 0 {
			nsDelta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		allocDelta := nb.AllocsOp - ob.AllocsOp
		mark := ""
		if timesComparable && nsDelta > *maxRegress {
			mark, failed = "  TIME-REGRESSION", true
		}
		if allocDelta > ob.AllocsOp**allocSlack+16 {
			mark, failed = mark+"  ALLOC-REGRESSION", true
		}
		if *summary {
			flag := ""
			switch {
			case mark != "":
				flag = "🔴 " + strings.TrimSpace(mark)
			case timesComparable && nsDelta < -0.05:
				flag = "🟢"
			}
			fmt.Printf("| %s | %.1f | %.1f | %+.1f%% | %.0f | %.0f | %+.0f | %s |\n",
				name, ob.NsPerOp, nb.NsPerOp, 100*nsDelta, ob.AllocsOp, nb.AllocsOp, allocDelta, flag)
		} else {
			fmt.Printf("%-28s %14.1f %14.1f %+7.1f%%   %12.0f %12.0f %+8.0f%s\n",
				name, ob.NsPerOp, nb.NsPerOp, 100*nsDelta, ob.AllocsOp, nb.AllocsOp, allocDelta, mark)
		}
	}
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			if *summary {
				fmt.Printf("| %s | | | | | | | dropped |\n", name)
			} else {
				fmt.Printf("%-28s   dropped from the new record\n", name)
			}
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: performance regression past threshold")
		os.Exit(1)
	}
}

func load(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// newestPair returns the two highest-numbered BENCH_<n>.json files in dir
// that share a bench mode. Records of different modes interleave freely on
// the trajectory (a serve record can land between two micro records); the
// scan compares within the mode whose newest record is most recent and has
// a predecessor, so a first-of-its-mode record never breaks the diff.
func newestPair(dir string) (old, new string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	var nums []int
	for _, e := range entries {
		if m := benchFile.FindStringSubmatch(e.Name()); m != nil {
			n, _ := strconv.Atoi(m[1])
			nums = append(nums, n)
		}
	}
	if len(nums) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_<n>.json records in %s, found %d", dir, len(nums))
	}
	sort.Ints(nums)
	// Newest-first: the first mode seen twice is the pair to diff.
	latest := map[string]string{} // mode -> newest record path of that mode
	for i := len(nums) - 1; i >= 0; i-- {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", nums[i]))
		rec, err := load(path)
		if err != nil {
			return "", "", err
		}
		mode := rec.benchMode()
		if prev, ok := latest[mode]; ok {
			return path, prev, nil
		}
		latest[mode] = path
	}
	return "", "", fmt.Errorf("no two BENCH_<n>.json records in %s share a bench mode", dir)
}
