// Command graphgen generates the synthetic datasets of this reproduction
// (DESIGN.md §1) and writes them as binary CSR containers or SNAP-style
// edge lists, standing in for the paper's dataset download step.
//
// Usage:
//
//	graphgen -list
//	graphgen -dataset lj-sim -o lj-sim.csr
//	graphgen -rmat -scale 16 -edgefactor 16 -seed 7 -format edgelist -o g.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list registered datasets and exit")
		dataset    = flag.String("dataset", "", "registered dataset name to generate (see -list)")
		rmat       = flag.Bool("rmat", false, "generate a custom R-MAT graph instead of a registered dataset")
		scale      = flag.Int("scale", 16, "R-MAT scale (2^scale vertices)")
		edgeFactor = flag.Int("edgefactor", 16, "R-MAT edge factor")
		directed   = flag.Bool("directed", false, "generate a directed graph (R-MAT only)")
		seed       = flag.Uint64("seed", 1, "generator seed (R-MAT only)")
		format     = flag.String("format", "binary", `output format: "binary" (CSR container), "edgelist", or "mtx" (MatrixMarket)`)
		out        = flag.String("o", "", "output file (default stdout)")
		prepare    = flag.Bool("prepare", true, "apply the paper's preprocessing (degree<2 removal + random relabeling)")
		showStats  = flag.Bool("stats", false, "print degree-distribution statistics (power-law fit, Gini, top-10% share) instead of writing the graph")
	)
	flag.Parse()

	if *list {
		for _, name := range gen.Names() {
			d, _ := gen.Lookup(name)
			fmt.Printf("%-16s stands in for %s (%s)\n", name, d.PaperName, d.Kind)
		}
		return
	}

	var g *graph.Graph
	switch {
	case *rmat:
		kind := graph.Undirected
		if *directed {
			kind = graph.Directed
		}
		g = gen.RMAT(gen.DefaultRMAT(*scale, *edgeFactor, kind, *seed))
		if *prepare {
			g = gen.Prepare(g, *seed)
		}
	case *dataset != "":
		var err error
		g, err = gen.Load(*dataset) // Load always prepares
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("specify -dataset, -rmat, or -list"))
	}

	if *showStats {
		degs := make([]int, g.NumVertices())
		fdegs := make([]float64, g.NumVertices())
		for v := range degs {
			degs[v] = g.OutDegree(graph.V(v))
			fdegs[v] = float64(degs[v])
		}
		fmt.Printf("n=%d m=%d (%s), max degree %d\n", g.NumVertices(), g.NumEdges(), g.Kind(), g.MaxDegree())
		fmt.Printf("degree Gini: %.3f   top-10%% share: %.1f%%\n",
			stats.Gini(fdegs), 100*stats.TopShare(fdegs, 0.1))
		if fit, err := stats.FitPowerLaw(degs, 0); err == nil {
			tail := "not heavy-tailed (exponential-like tail)"
			if fit.HeavyTailed() {
				tail = "heavy-tailed (scale-free regime, §III-B-1 sizing applies)"
			}
			fmt.Printf("power-law fit: gamma=%.2f at kmin=%d over %d tail vertices — %s\n",
				fit.Gamma, fit.KMin, fit.NTail, tail)
		} else {
			fmt.Printf("power-law fit: %v\n", err)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "binary":
		err = graph.WriteBinary(w, g)
	case "edgelist":
		err = graph.WriteEdgeList(w, g)
	case "mtx":
		err = graph.WriteMatrixMarket(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s graph: n=%d m=%d csr=%d bytes\n",
		g.Kind(), g.NumVertices(), g.NumEdges(), g.CSRSizeBytes())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
