// Command lccrun computes triangle counts and local clustering
// coefficients with the paper's fully asynchronous distributed engine on a
// simulated multi-rank machine, printing the performance counters the
// evaluation reports.
//
// Usage:
//
//	lccrun -dataset lj-sim -ranks 16 -cache -degree-scores
//	lccrun -dataset lj-sim -ranks 16 -engine push
//	lccrun -dataset lj-sim -ranks 16 -engine replicated -replicas 4
//	lccrun -in graph.csr -ranks 8 -scheme cyclic -top 10 -delegate 1048576
//	lccrun -dataset lj-sim -ranks 16 -timeout 30s
//	graphgen -dataset fb-sim -format edgelist | lccrun -ranks 2 -format edgelist -in -
//
// Exit codes: 0 on success, 1 on any error, 3 when -timeout canceled the
// run (the simulated ranks unwind at their next checkpoint and no partial
// results are printed).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/part"
	"repro/internal/sched"
)

// exitDeadline is the distinct exit code for a run canceled by -timeout,
// so scripts can tell "too slow" from "wrong".
const exitDeadline = 3

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lccrun:", err)
		if errors.Is(err, sched.ErrRunCanceled) {
			os.Exit(exitDeadline)
		}
		os.Exit(1)
	}
}

// run parses args and executes one engine run, writing the report to out.
// All failures — bad flags, unreadable input, engine errors — surface as a
// returned error so main can exit non-zero in exactly one place.
func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("lccrun", flag.ContinueOnError)
	var (
		dataset   = fs.String("dataset", "", "registered dataset name (see graphgen -list)")
		in        = fs.String("in", "", `input graph file, or "-" for stdin`)
		format    = fs.String("format", "binary", `input format: "binary", "edgelist", or "mtx" (MatrixMarket)`)
		directed  = fs.Bool("directed", false, "treat edge-list input as directed")
		ranks     = fs.Int("ranks", 4, "number of simulated computing nodes")
		workers   = fs.Int("workers", 0, "host worker goroutines executing simulated ranks (0 = GOMAXPROCS); results are identical at any setting")
		scheme    = fs.String("scheme", "block", `1D distribution: "block" or "cyclic"`)
		method    = fs.String("method", "hybrid", `intersection method: "hybrid", "ssi", "binary", or "hash"`)
		caching   = fs.Bool("cache", false, "enable CLaMPI RMA caching (C_offsets + C_adj)")
		offBytes  = fs.Int("cache-offsets", 0, "C_offsets capacity in bytes (0 = paper sizing)")
		adjBytes  = fs.Int("cache-adj", 0, "C_adj capacity in bytes (0 = paper sizing)")
		degScores = fs.Bool("degree-scores", false, "use degree-centrality eviction scores for C_adj (§III-B-2)")
		noOverlap = fs.Bool("no-overlap", false, "disable double buffering (§III-A)")
		engine    = fs.String("engine", "pull", `engine: "pull" (Algorithm 3), "push" (§VI ii dichotomy), or "replicated" (§VI i 1.5D)`)
		pushAgg   = fs.String("push-agg", "batched", `push contribution shipping: "batched" or "direct"`)
		replicas  = fs.Int("replicas", 2, "graph copies c for -engine replicated (must divide -ranks)")
		delegate  = fs.Int("delegate", 0, "static vertex-delegation budget in bytes per rank (0 = off)")
		top       = fs.Int("top", 5, "print the top-K vertices by LCC")
		faults    = fs.String("faults", "", `deterministic fault schedule, e.g. "seed=1,get=0.01,drop=0.02" or "chaos,seed=3" (empty = off); results are unchanged, only simulated time grows`)
		timeout   = fs.Duration("timeout", 0, "cancel the run after this host-time budget (0 = none); a deadlined run prints nothing and exits with code 3")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	faultSpec, err := fault.ParseSpec(*faults)
	if err != nil {
		return fmt.Errorf("-faults: %w", err)
	}

	g, err := loadGraph(*dataset, *in, *format, *directed)
	if err != nil {
		return err
	}

	opt := lcc.Options{
		Ranks:        *ranks,
		Workers:      *workers,
		Method:       parseMethod(*method),
		DoubleBuffer: !*noOverlap,
		Caching:      *caching,
		DegreeScores: *degScores,
		Faults:       faultSpec,
	}
	if *scheme == "cyclic" {
		opt.Scheme = part.Cyclic
	}
	if *caching {
		opt.OffsetsCacheBytes = *offBytes
		opt.AdjCacheBytes = *adjBytes
		if opt.OffsetsCacheBytes == 0 {
			opt.OffsetsCacheBytes = 16 * (2 * g.NumVertices() / 5)
		}
		if opt.AdjCacheBytes == 0 {
			opt.AdjCacheBytes = 64 << 20
		}
	}

	opt.DelegateBytes = *delegate

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res *lcc.Result
	switch *engine {
	case "pull":
		res, err = lcc.RunCtx(ctx, g, opt)
	case "push":
		agg := lcc.PushBatched
		if *pushAgg == "direct" {
			agg = lcc.PushDirect
		}
		res, err = lcc.RunPushCtx(ctx, g, lcc.PushOptions{Options: opt, Aggregation: agg})
	case "replicated":
		res, err = lcc.RunReplicatedCtx(ctx, g, lcc.ReplicatedOptions{Options: opt, Replication: *replicas})
	default:
		err = fmt.Errorf("unknown engine %q", *engine)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "graph: %s, n=%d, m=%d, csr=%d bytes\n",
		g.Kind(), g.NumVertices(), g.NumEdges(), g.CSRSizeBytes())
	fmt.Fprintf(out, "engine=%s ranks=%d scheme=%s method=%s caching=%v overlap=%v\n",
		*engine, *ranks, *scheme, *method, *caching, !*noOverlap)
	if *delegate > 0 {
		fmt.Fprintf(out, "delegation: %d vertices, %d bytes per rank\n",
			res.DelegatedVertices, res.DelegationBytes)
	}
	fmt.Fprintf(out, "triangles: %d (closed-triplet sum %d)\n", res.Triangles, res.SumT)
	fmt.Fprintf(out, "simulated time: %.3f ms (slowest rank)\n", res.SimTime/1e6)
	fmt.Fprintf(out, "remote reads: %.1f%% of adjacency fetches; comm share of critical path: %.1f%%\n",
		100*res.RemoteReadFraction(), 100*res.CommFraction())
	if *caching {
		offRate, adjRate := res.CacheMissRates()
		fmt.Fprintf(out, "cache miss rates: C_offsets %.3f, C_adj %.3f; avg remote read %.2f µs\n",
			offRate, adjRate, res.AvgRemoteReadTime()/1e3)
	}

	if *top > 0 {
		type vl struct {
			v graph.V
			l float64
		}
		all := make([]vl, 0, len(res.LCC))
		for v, l := range res.LCC {
			all = append(all, vl{graph.V(v), l})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].l != all[j].l {
				return all[i].l > all[j].l
			}
			return all[i].v < all[j].v
		})
		k := *top
		if k > len(all) {
			k = len(all)
		}
		fmt.Fprintf(out, "top %d vertices by LCC:\n", k)
		for _, x := range all[:k] {
			fmt.Fprintf(out, "  v%-8d lcc=%.4f deg=%d\n", x.v, x.l, g.OutDegree(x.v))
		}
	}
	return nil
}

func loadGraph(dataset, in, format string, directed bool) (*graph.Graph, error) {
	switch {
	case dataset != "":
		return gen.Load(dataset)
	case in == "-":
		return readGraph(os.Stdin, format, directed)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return readGraph(f, format, directed)
	default:
		return nil, fmt.Errorf("specify -dataset or -in")
	}
}

func readGraph(f *os.File, format string, directed bool) (*graph.Graph, error) {
	kind := graph.Undirected
	if directed {
		kind = graph.Directed
	}
	switch format {
	case "binary":
		return graph.ReadBinary(f)
	case "edgelist":
		return graph.ReadEdgeList(f, kind)
	case "mtx":
		// MatrixMarket carries its own directedness in the header.
		return graph.ReadMatrixMarket(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func parseMethod(s string) intersect.Method {
	switch s {
	case "ssi":
		return intersect.MethodSSI
	case "binary":
		return intersect.MethodBinary
	case "hash":
		return intersect.MethodHash
	default:
		return intersect.MethodHybrid
	}
}
