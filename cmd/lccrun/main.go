// Command lccrun computes triangle counts and local clustering
// coefficients with the paper's fully asynchronous distributed engine on a
// simulated multi-rank machine, printing the performance counters the
// evaluation reports.
//
// Usage:
//
//	lccrun -dataset lj-sim -ranks 16 -cache -degree-scores
//	lccrun -dataset lj-sim -ranks 16 -engine push
//	lccrun -dataset lj-sim -ranks 16 -engine replicated -replicas 4
//	lccrun -in graph.csr -ranks 8 -scheme cyclic -top 10 -delegate 1048576
//	graphgen -dataset fb-sim -format edgelist | lccrun -ranks 2 -format edgelist -in -
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/part"
)

func main() {
	var (
		dataset   = flag.String("dataset", "", "registered dataset name (see graphgen -list)")
		in        = flag.String("in", "", `input graph file, or "-" for stdin`)
		format    = flag.String("format", "binary", `input format: "binary", "edgelist", or "mtx" (MatrixMarket)`)
		directed  = flag.Bool("directed", false, "treat edge-list input as directed")
		ranks     = flag.Int("ranks", 4, "number of simulated computing nodes")
		workers   = flag.Int("workers", 0, "host worker goroutines executing simulated ranks (0 = GOMAXPROCS); results are identical at any setting")
		scheme    = flag.String("scheme", "block", `1D distribution: "block" or "cyclic"`)
		method    = flag.String("method", "hybrid", `intersection method: "hybrid", "ssi", "binary", or "hash"`)
		caching   = flag.Bool("cache", false, "enable CLaMPI RMA caching (C_offsets + C_adj)")
		offBytes  = flag.Int("cache-offsets", 0, "C_offsets capacity in bytes (0 = paper sizing)")
		adjBytes  = flag.Int("cache-adj", 0, "C_adj capacity in bytes (0 = paper sizing)")
		degScores = flag.Bool("degree-scores", false, "use degree-centrality eviction scores for C_adj (§III-B-2)")
		noOverlap = flag.Bool("no-overlap", false, "disable double buffering (§III-A)")
		engine    = flag.String("engine", "pull", `engine: "pull" (Algorithm 3), "push" (§VI ii dichotomy), or "replicated" (§VI i 1.5D)`)
		pushAgg   = flag.String("push-agg", "batched", `push contribution shipping: "batched" or "direct"`)
		replicas  = flag.Int("replicas", 2, "graph copies c for -engine replicated (must divide -ranks)")
		delegate  = flag.Int("delegate", 0, "static vertex-delegation budget in bytes per rank (0 = off)")
		top       = flag.Int("top", 5, "print the top-K vertices by LCC")
	)
	flag.Parse()

	g, err := loadGraph(*dataset, *in, *format, *directed)
	if err != nil {
		fatal(err)
	}

	opt := lcc.Options{
		Ranks:        *ranks,
		Workers:      *workers,
		Method:       parseMethod(*method),
		DoubleBuffer: !*noOverlap,
		Caching:      *caching,
		DegreeScores: *degScores,
	}
	if *scheme == "cyclic" {
		opt.Scheme = part.Cyclic
	}
	if *caching {
		opt.OffsetsCacheBytes = *offBytes
		opt.AdjCacheBytes = *adjBytes
		if opt.OffsetsCacheBytes == 0 {
			opt.OffsetsCacheBytes = 16 * (2 * g.NumVertices() / 5)
		}
		if opt.AdjCacheBytes == 0 {
			opt.AdjCacheBytes = 64 << 20
		}
	}

	opt.DelegateBytes = *delegate

	var res *lcc.Result
	switch *engine {
	case "pull":
		res, err = lcc.Run(g, opt)
	case "push":
		agg := lcc.PushBatched
		if *pushAgg == "direct" {
			agg = lcc.PushDirect
		}
		res, err = lcc.RunPush(g, lcc.PushOptions{Options: opt, Aggregation: agg})
	case "replicated":
		res, err = lcc.RunReplicated(g, lcc.ReplicatedOptions{Options: opt, Replication: *replicas})
	default:
		err = fmt.Errorf("unknown engine %q", *engine)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("graph: %s, n=%d, m=%d, csr=%d bytes\n",
		g.Kind(), g.NumVertices(), g.NumEdges(), g.CSRSizeBytes())
	fmt.Printf("engine=%s ranks=%d scheme=%s method=%s caching=%v overlap=%v\n",
		*engine, *ranks, *scheme, *method, *caching, !*noOverlap)
	if *delegate > 0 {
		fmt.Printf("delegation: %d vertices, %d bytes per rank\n",
			res.DelegatedVertices, res.DelegationBytes)
	}
	fmt.Printf("triangles: %d (closed-triplet sum %d)\n", res.Triangles, res.SumT)
	fmt.Printf("simulated time: %.3f ms (slowest rank)\n", res.SimTime/1e6)
	fmt.Printf("remote reads: %.1f%% of adjacency fetches; comm share of critical path: %.1f%%\n",
		100*res.RemoteReadFraction(), 100*res.CommFraction())
	if *caching {
		offRate, adjRate := res.CacheMissRates()
		fmt.Printf("cache miss rates: C_offsets %.3f, C_adj %.3f; avg remote read %.2f µs\n",
			offRate, adjRate, res.AvgRemoteReadTime()/1e3)
	}

	if *top > 0 {
		type vl struct {
			v graph.V
			l float64
		}
		all := make([]vl, 0, len(res.LCC))
		for v, l := range res.LCC {
			all = append(all, vl{graph.V(v), l})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].l != all[j].l {
				return all[i].l > all[j].l
			}
			return all[i].v < all[j].v
		})
		k := *top
		if k > len(all) {
			k = len(all)
		}
		fmt.Printf("top %d vertices by LCC:\n", k)
		for _, x := range all[:k] {
			fmt.Printf("  v%-8d lcc=%.4f deg=%d\n", x.v, x.l, g.OutDegree(x.v))
		}
	}
}

func loadGraph(dataset, in, format string, directed bool) (*graph.Graph, error) {
	switch {
	case dataset != "":
		return gen.Load(dataset)
	case in == "-":
		return readGraph(os.Stdin, format, directed)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return readGraph(f, format, directed)
	default:
		return nil, fmt.Errorf("specify -dataset or -in")
	}
}

func readGraph(f *os.File, format string, directed bool) (*graph.Graph, error) {
	kind := graph.Undirected
	if directed {
		kind = graph.Directed
	}
	switch format {
	case "binary":
		return graph.ReadBinary(f)
	case "edgelist":
		return graph.ReadEdgeList(f, kind)
	case "mtx":
		// MatrixMarket carries its own directedness in the header.
		return graph.ReadMatrixMarket(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func parseMethod(s string) intersect.Method {
	switch s {
	case "ssi":
		return intersect.MethodSSI
	case "binary":
		return intersect.MethodBinary
	case "hash":
		return intersect.MethodHash
	default:
		return intersect.MethodHybrid
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lccrun:", err)
	os.Exit(1)
}
