// Command lccd is the persistent analytics daemon over the simulated
// engines: it keeps named graph instances loaded (internal/serve) and
// serves supervised LCC/Jaccard queries against them over a local
// HTTP+JSON API. Runs carry deadlines, cancellation unwinds the simulated
// ranks cleanly, a worker panic fails the run but never the process, and
// admission control bounds concurrent runs per instance — overflow queues
// (bounded, priority-ordered) when the instance allows it.
//
// With -state-dir the daemon is durable: every loaded instance persists a
// versioned, checksummed manifest, and a restart — graceful or kill -9 —
// recovers the fleet from the manifests (lazily by default: instances
// come back parked and rebuild their snapshot on first query). With
// -mem-budget the supervisor parks idle instances LRU when total resident
// snapshot bytes overshoot the budget.
//
// Usage:
//
//	lccd -addr 127.0.0.1:8090
//	lccd -state-dir /var/lib/lccd            # durable: manifests + crash recovery
//	lccd -state-dir dir -recover eager       # rebuild all snapshots at boot
//	lccd -mem-budget 2147483648              # park idle instances past 2 GiB
//	lccd -run-cap 16                         # shed runs past 16 in flight fleet-wide
//	lccd -scrub-period 1m                    # background snapshot integrity scrubbing
//	lccd -smoke            # self-contained smoke run: load, query, drain, exit
//	lccd -restart-smoke    # crash-recovery smoke: boot, load, kill -9, restart, verify
//	lccd -chaos-smoke      # seeded chaos campaign: kill/corrupt/storm a real daemon
//
// API (JSON bodies, JSON replies):
//
//	POST /v1/load   {"name":"fb","dataset":"fb-sim","ranks":4,"max_concurrent":2,"queue_depth":8,
//	                 "stall_timeout_ms":60000}
//	POST /v1/run    {"instance":"fb","engine":"lcc","method":"hybrid","caching":true,
//	                 "timeout_ms":5000,"priority":1,"queue_timeout_ms":2000}
//	POST /v1/stop   {"instance":"fb"}
//	GET  /v1/ps
//	GET  /v1/health
//
// Typed serve errors map to statuses, and every error body carries a
// machine-readable "reason" code alongside the message: 429
// busy/queue-overflow or the server-wide run cap (with Retry-After), 404
// unknown instance, 410 exited, 503 loading/unhealthy/memory-brownout,
// 504 deadline, cancellation or queue timeout (the JSON body carries the
// queue wait), 500 isolated panic or a watchdog-detected stall, 413
// oversized request body. A client timeout_ms (or Request-Timeout
// header, in seconds) becomes the run context's deadline, so queue wait
// and execution share one budget. SIGTERM/SIGINT drains in-flight runs
// before exit; manifests survive the drain.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/part"
	"repro/internal/sched"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lccd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lccd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8090", "listen address for the HTTP API")
		drain        = fs.Duration("drain", 30*time.Second, "how long a shutdown waits for in-flight runs")
		stateDir     = fs.String("state-dir", "", "directory for instance manifests; enables restart recovery")
		recoverMode  = fs.String("recover", "lazy", "manifest recovery mode: lazy (parked, rebuild on first query) or eager")
		memBudget    = fs.Int64("mem-budget", 0, "total resident snapshot bytes before idle instances are parked LRU (0 = unbounded)")
		runCap       = fs.Int("run-cap", 0, "server-wide cap on supervised runs in flight; past it runs shed with 429 (0 = unbounded)")
		scrubPeriod  = fs.Duration("scrub-period", 0, "background snapshot integrity-scrub period, jittered ±25% (0 = off)")
		scrubSeed    = fs.Uint64("scrub-seed", 1, "seed for the scrub period jitter")
		smoke        = fs.Bool("smoke", false, "start on an ephemeral port, load fb-sim, run one query, drain, exit")
		restartSmoke = fs.Bool("restart-smoke", false, "crash-recovery smoke: boot with a state dir, load, kill -9, restart, verify pinned bits")
		chaosSmoke   = fs.Bool("chaos-smoke", false, "seeded chaos campaign against a real re-exec'd daemon: kill -9, corrupt state, storm, verify bits")
		chaosCycles  = fs.Int("chaos-cycles", 20, "number of chaos campaign cycles")
		chaosSeed    = fs.Uint64("chaos-seed", 1, "seed for the chaos campaign schedule")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *restartSmoke {
		return runRestartSmoke(out)
	}
	if *chaosSmoke {
		return runChaosSmoke(out, *chaosCycles, *chaosSeed)
	}

	srv := newServer()
	if *memBudget > 0 {
		srv.sup.SetMemBudget(*memBudget)
	}
	if *runCap > 0 {
		srv.sup.SetRunCap(*runCap)
	}
	if *scrubPeriod > 0 {
		srv.scrubber = srv.sup.StartScrubber(*scrubPeriod, *scrubSeed)
	}
	if *stateDir != "" {
		ms, err := serve.NewManifestStore(*stateDir)
		if err != nil {
			return fmt.Errorf("state dir: %w", err)
		}
		srv.stateDir = *stateDir
		srv.sup.SetManifestStore(ms)
		eager := false
		switch *recoverMode {
		case "lazy":
		case "eager":
			eager = true
		default:
			return fmt.Errorf("unknown -recover mode %q (want lazy or eager)", *recoverMode)
		}
		rep := srv.sup.Recover(eager)
		for _, me := range rep.Skipped {
			fmt.Fprintf(out, "lccd: skipping manifest: %v\n", me)
		}
		for _, name := range rep.Failed {
			fmt.Fprintf(out, "lccd: recovered instance %q failed to rebuild (see /v1/ps)\n", name)
		}
		if len(rep.Restored) > 0 {
			mode := "parked"
			if eager {
				mode = "ready"
			}
			fmt.Fprintf(out, "lccd: recovered %d instance(s) from %s (%s): %s\n",
				len(rep.Restored), *stateDir, mode, strings.Join(rep.Restored, ", "))
		}
	}
	if *smoke {
		return srv.smoke(out, *drain)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lccd: serving on http://%s\n", ln.Addr())
	srv.writeAddrFile(ln.Addr().String())
	return srv.serve(ln, out, *drain)
}

// maxBodyBytes bounds request bodies: every API body is a small JSON
// object, so anything past 1 MiB is a client bug or abuse and gets 413
// instead of an unbounded read.
const maxBodyBytes = 1 << 20

// server binds the supervisor to the HTTP surface.
type server struct {
	sup      *serve.Supervisor
	http     *http.Server
	stateDir string
	scrubber *serve.Scrubber
}

func newServer() *server {
	s := &server{sup: serve.NewSupervisor()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/load", s.handleLoad)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/stop", s.handleStop)
	mux.HandleFunc("GET /v1/ps", s.handlePS)
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.http = &http.Server{
		Handler: mux,
		// Slow-client hardening: a peer that trickles headers or a body
		// can no longer pin a connection goroutine forever. Handler
		// execution (long runs) is NOT bounded here — run deadlines belong
		// to the run context, not the socket.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return s
}

// writeAddrFile records the bound address in the state dir so ops tooling
// (and the restart smoke) can find a daemon that bound an ephemeral port.
// Best-effort: no state dir, no file.
func (s *server) writeAddrFile(addr string) {
	if s.stateDir == "" {
		return
	}
	_ = os.WriteFile(filepath.Join(s.stateDir, "lccd.addr"), []byte(addr+"\n"), 0o644)
}

// serve runs the HTTP server until SIGTERM/SIGINT, then drains: the
// supervisor stops admitting runs, fences the admission queues and waits
// for in-flight ones, then the HTTP server shuts down. Manifests survive
// the drain — a restarted daemon recovers the same fleet.
func (s *server) serve(ln net.Listener, out io.Writer, drain time.Duration) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(stop)

	errCh := make(chan error, 1)
	go func() { errCh <- s.http.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		fmt.Fprintf(out, "lccd: %v, draining (up to %v)\n", sig, drain)
	}
	if s.scrubber != nil {
		s.scrubber.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.sup.Shutdown(ctx); err != nil {
		fmt.Fprintf(out, "lccd: drain incomplete: %v\n", err)
	}
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "lccd: drained, bye")
	return nil
}

// loadRequest is the POST /v1/load body.
type loadRequest struct {
	Name           string `json:"name"`
	Dataset        string `json:"dataset"`
	Ranks          int    `json:"ranks"`
	Scheme         string `json:"scheme"`
	DelegateBytes  int    `json:"delegate_bytes"`
	Storage        string `json:"storage"`
	MemBudgetBytes int64  `json:"mem_budget_bytes"`
	MaxConcurrent  int    `json:"max_concurrent"`
	QueueDepth     int    `json:"queue_depth"`
	TimeoutMS      int64  `json:"default_timeout_ms"`
	StallTimeoutMS int64  `json:"stall_timeout_ms"`
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.Name == "" || req.Dataset == "" {
		writeError(w, http.StatusBadRequest, "bad-request", errors.New("load needs name and dataset"))
		return
	}
	scheme, err := part.ParseScheme(req.Scheme)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err)
		return
	}
	storage, err := lcc.ParseStorageMode(req.Storage)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err)
		return
	}
	inst, err := s.sup.Load(req.Name, serve.Config{
		Dataset:        req.Dataset,
		Ranks:          req.Ranks,
		Scheme:         scheme,
		DelegateBytes:  req.DelegateBytes,
		Storage:        storage,
		MemBudgetBytes: req.MemBudgetBytes,
		MaxConcurrent:  req.MaxConcurrent,
		QueueDepth:     req.QueueDepth,
		DefaultTimeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		StallTimeout:   time.Duration(req.StallTimeoutMS) * time.Millisecond,
	})
	if err != nil {
		writeServeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, inst.Info())
}

// runRequest is the POST /v1/run body. Distribution comes from the
// instance's snapshot; the query owns method, caching, workers, faults,
// priority and queue deadline.
type runRequest struct {
	Instance       string `json:"instance"`
	Engine         string `json:"engine"`
	Method         string `json:"method"`
	Workers        int    `json:"workers"`
	Caching        bool   `json:"caching"`
	CacheOffsets   int    `json:"cache_offsets_bytes"`
	CacheAdj       int    `json:"cache_adj_bytes"`
	DegreeScores   bool   `json:"degree_scores"`
	NoOverlap      bool   `json:"no_overlap"`
	Faults         string `json:"faults"`
	TimeoutMS      int64  `json:"timeout_ms"`
	Priority       int    `json:"priority"`
	QueueTimeoutMS int64  `json:"queue_timeout_ms"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	spec, err := fault.ParseSpec(req.Faults)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err)
		return
	}
	opt := lcc.Options{
		Workers:      req.Workers,
		Method:       parseMethod(req.Method),
		DoubleBuffer: !req.NoOverlap,
		Caching:      req.Caching,
		DegreeScores: req.DegreeScores,
		Faults:       spec,
	}
	if req.Caching {
		opt.OffsetsCacheBytes = req.CacheOffsets
		opt.AdjCacheBytes = req.CacheAdj
		if opt.OffsetsCacheBytes == 0 {
			opt.OffsetsCacheBytes = 1 << 20
		}
		if opt.AdjCacheBytes == 0 {
			opt.AdjCacheBytes = 64 << 20
		}
	}
	q := serve.Query{
		Engine:       req.Engine,
		Options:      opt,
		Priority:     req.Priority,
		QueueTimeout: time.Duration(req.QueueTimeoutMS) * time.Millisecond,
	}
	// Deadline propagation: the client's budget (timeout_ms, or a
	// Request-Timeout header in seconds) becomes the run context's
	// deadline, so time spent waiting in the admission queue and time
	// executing draw from the same budget — a run that queued for most of
	// its deadline doesn't then run for a full deadline more. Query.Timeout
	// is disabled (-1) because the context now carries it; with no client
	// budget the instance default applies as before.
	ctx := r.Context()
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = headerTimeout(r)
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
		q.Timeout = -1
	}
	res, err := s.sup.Run(ctx, req.Instance, q)
	if err != nil {
		writeServeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// headerTimeout parses the Request-Timeout header (seconds, fractions
// allowed) — the header form of the body's timeout_ms.
func headerTimeout(r *http.Request) time.Duration {
	h := r.Header.Get("Request-Timeout")
	if h == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(h, 64)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

func (s *server) handleStop(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Instance string `json:"instance"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if err := s.sup.Stop(req.Instance); err != nil {
		writeServeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"instance": req.Instance, "state": "exited"})
}

// psReply is the GET /v1/ps shape: the fleet-level server view (state
// counts, global admission, scrub stats) plus the per-instance list.
type psReply struct {
	Server    serve.ServerInfo     `json:"server"`
	Instances []serve.InstanceInfo `json:"instances"`
}

func (s *server) handlePS(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, psReply{Server: s.sup.ServerInfo(), Instances: s.sup.List()})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	if !s.sup.Healthy() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"healthy":   status == http.StatusOK,
		"server":    s.sup.ServerInfo(),
		"instances": s.sup.List(),
	})
}

// decodeBody reads one bounded JSON body; on failure it writes the error
// reply (413 when the MaxBytesReader bound tripped, 400 otherwise) and
// returns non-nil so the handler just returns.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "body-too-large", err)
			return err
		}
		writeError(w, http.StatusBadRequest, "bad-request", err)
		return err
	}
	return nil
}

// statusFor maps typed serve/sched errors to an HTTP status and a
// machine-readable reason code. Ordering is contractual where errors
// wrap each other: a *StallError unwinds through the cancellation plane,
// so it matches ErrRunCanceled too and must be classified first; the
// server-wide ErrServerBusy is checked before the per-instance ErrBusy
// so a fleet-cap shed is distinguishable from one full queue.
func statusFor(err error) (int, string) {
	var pe *sched.PanicError
	switch {
	case errors.Is(err, serve.ErrStalled):
		return http.StatusInternalServerError, "stalled"
	case errors.Is(err, serve.ErrServerBusy):
		return http.StatusTooManyRequests, "run-cap"
	case errors.Is(err, serve.ErrBrownout):
		return http.StatusServiceUnavailable, "memory-brownout"
	case errors.Is(err, serve.ErrBusy):
		return http.StatusTooManyRequests, "instance-busy"
	case errors.Is(err, serve.ErrUnknownInstance):
		return http.StatusNotFound, "unknown-instance"
	case errors.Is(err, serve.ErrInstanceExited):
		return http.StatusGone, "instance-exited"
	case errors.Is(err, serve.ErrNotReady):
		return http.StatusServiceUnavailable, "not-ready"
	case errors.Is(err, serve.ErrUnhealthy):
		return http.StatusServiceUnavailable, "unhealthy"
	case errors.Is(err, serve.ErrAlreadyRunning):
		return http.StatusConflict, "already-running"
	case errors.Is(err, serve.ErrQueueTimeout):
		return http.StatusGatewayTimeout, "queue-timeout"
	case errors.Is(err, sched.ErrRunCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "canceled"
	case errors.As(err, &pe):
		return http.StatusInternalServerError, "panic"
	default:
		return http.StatusBadRequest, "bad-request"
	}
}

// errorBody is the JSON error reply. Reason is always set — every
// rejection is machine-classifiable without parsing the message.
// QueueWaitMS reports how long a queue-timed-out run waited before the
// 504; the shed fields carry the numbers behind a 429/503 shed decision.
type errorBody struct {
	Error       string `json:"error"`
	Reason      string `json:"reason"`
	QueueWaitMS int64  `json:"queue_wait_ms,omitempty"`

	ActiveRuns    int   `json:"active_runs,omitempty"`
	RunCap        int   `json:"run_cap,omitempty"`
	ResidentBytes int64 `json:"resident_bytes,omitempty"`
	BudgetBytes   int64 `json:"budget_bytes,omitempty"`
}

// writeServeError maps a typed serve error onto its status and protocol
// extras: 429 responses carry Retry-After (busy is transient by
// definition — the queue or a slot frees as runs drain), a queue
// timeout's 504 body records the measured wait, and a shed decision's
// body carries the admission numbers that justified it.
func writeServeError(w http.ResponseWriter, err error) {
	status, reason := statusFor(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	body := errorBody{Error: err.Error(), Reason: reason}
	var qe *serve.QueueTimeoutError
	if errors.As(err, &qe) {
		body.QueueWaitMS = qe.Wait.Milliseconds()
	}
	var she *serve.ShedError
	if errors.As(err, &she) {
		body.ActiveRuns = she.ActiveRuns
		body.RunCap = she.RunCap
		body.ResidentBytes = she.ResidentBytes
		body.BudgetBytes = she.BudgetBytes
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, reason string, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Reason: reason})
}

func parseMethod(s string) intersect.Method {
	switch s {
	case "ssi":
		return intersect.MethodSSI
	case "binary":
		return intersect.MethodBinary
	case "hash":
		return intersect.MethodHash
	default:
		return intersect.MethodHybrid
	}
}

// smoke exercises the full service loop in one process — the make
// serve-smoke / CI step: serve on an ephemeral port, load a graph over
// HTTP, run one query, list instances, then drain and exit. Any failure
// is fatal.
func (s *server) smoke(out io.Writer, drain time.Duration) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = s.http.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	post := func(path string, body string, want int) (map[string]any, error) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return nil, err
		}
		if resp.StatusCode != want {
			return m, fmt.Errorf("%s: status %d (want %d): %v", path, resp.StatusCode, want, m)
		}
		return m, nil
	}

	if _, err := post("/v1/load", `{"name":"fb","dataset":"fb-sim","ranks":4,"max_concurrent":2,"queue_depth":4}`, http.StatusOK); err != nil {
		return err
	}
	res, err := post("/v1/run", `{"instance":"fb","method":"hybrid","timeout_ms":60000}`, http.StatusOK)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lccd smoke: run ok: triangles=%v sim_time_ns=%v\n", res["triangles"], res["sim_time_ns"])
	if res["triangles"] == nil {
		return errors.New("smoke run returned no triangle count")
	}
	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health: status %d", resp.StatusCode)
	}
	// Body-bound hardening: an oversized request must bounce with a typed
	// 413, not be read without limit.
	huge := `{"instance":"fb","method":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	if m, err := post("/v1/run", huge, http.StatusRequestEntityTooLarge); err != nil {
		return err
	} else if m["reason"] != "body-too-large" {
		return fmt.Errorf("oversized body: reason = %v, want body-too-large", m["reason"])
	}
	if _, err := post("/v1/stop", `{"instance":"fb"}`, http.StatusOK); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.sup.Shutdown(ctx); err != nil {
		return err
	}
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "lccd smoke: ok")
	return nil
}

// smokeResult is the typed decode of a /v1/run reply: score_bits must
// round-trip as a uint64 (a float64 decode would lose the low bits of the
// checksum and defeat the bit-identity assertion).
type smokeResult struct {
	SimTime   float64 `json:"sim_time_ns"`
	Triangles int64   `json:"triangles"`
	SumT      int64   `json:"sum_t"`
	ScoreBits uint64  `json:"score_bits"`
}

// psView is the typed client-side decode of GET /v1/ps, shared by the
// restart smoke and the chaos harness.
type psView struct {
	Server struct {
		States     map[string]int   `json:"states"`
		ActiveRuns int              `json:"active_runs"`
		Scrub      serve.ScrubStats `json:"scrub"`
	} `json:"server"`
	Instances []struct {
		Name     string         `json:"name"`
		State    string         `json:"state"`
		Counters serve.Counters `json:"counters"`
	} `json:"instances"`
}

// runRestartSmoke is the crash-recovery lane (make serve-restart-smoke):
// it re-execs this binary as a real daemon with a state dir, loads fb-sim
// and records a golden query, SIGKILLs the daemon — no drain, no goodbye,
// the crash-stop case — restarts it, and asserts /v1/ps still knows the
// instance (recovered parked from its manifest) and that the same query
// returns bit-identical SimTime/Triangles/ScoreBits through the
// transparent reload.
func runRestartSmoke(out io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "lccd-restart-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "lccd.addr")

	boot := func() (*exec.Cmd, string, error) {
		_ = os.Remove(addrFile)
		cmd := exec.Command(exe, "-addr", "127.0.0.1:0", "-state-dir", dir)
		cmd.Stdout, cmd.Stderr = out, out
		if err := cmd.Start(); err != nil {
			return nil, "", err
		}
		for i := 0; i < 200; i++ {
			if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
				return cmd, "http://" + strings.TrimSpace(string(raw)), nil
			}
			time.Sleep(50 * time.Millisecond)
		}
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, "", errors.New("restart smoke: daemon did not write its address file")
	}

	post := func(base, path, body string) (*http.Response, error) {
		return http.Post(base+path, "application/json", strings.NewReader(body))
	}
	runQuery := func(base string) (*smokeResult, error) {
		resp, err := post(base, "/v1/run", `{"instance":"fb","method":"hybrid","timeout_ms":120000}`)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("run: status %d: %s", resp.StatusCode, raw)
		}
		var res smokeResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return nil, err
		}
		return &res, nil
	}

	// Boot 1: load the instance and take the pre-crash golden reading.
	d1, base1, err := boot()
	if err != nil {
		return err
	}
	resp, err := post(base1, "/v1/load", `{"name":"fb","dataset":"fb-sim","ranks":4,"max_concurrent":2,"queue_depth":4}`)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("load: status %d", resp.StatusCode)
	}
	before, err := runQuery(base1)
	if err != nil {
		return err
	}
	if before.Triangles == 0 {
		return errors.New("restart smoke: pre-crash run returned no triangles")
	}
	fmt.Fprintf(out, "lccd restart-smoke: pre-crash: triangles=%d score_bits=%#x\n", before.Triangles, before.ScoreBits)

	// Crash-stop: SIGKILL, no drain. The manifest on disk is now the only
	// record the instance ever existed.
	if err := d1.Process.Kill(); err != nil {
		return err
	}
	_ = d1.Wait()

	// Boot 2: recover from the state dir and verify the fleet and the bits.
	d2, base2, err := boot()
	if err != nil {
		return err
	}
	defer func() {
		_ = d2.Process.Signal(syscall.SIGTERM)
		_ = d2.Wait()
	}()
	psResp, err := http.Get(base2 + "/v1/ps")
	if err != nil {
		return err
	}
	var ps psView
	err = json.NewDecoder(psResp.Body).Decode(&ps)
	psResp.Body.Close()
	if err != nil {
		return err
	}
	found := ""
	for _, info := range ps.Instances {
		if info.Name == "fb" {
			found = info.State
		}
	}
	if found == "" {
		return fmt.Errorf("restart smoke: ps after restart does not list instance fb: %+v", ps.Instances)
	}
	// The server block must agree: lazy recovery brings the fleet back
	// parked, and the state counts are the ops-visible proof of it.
	if got := ps.Server.States["parked"]; got != 1 {
		return fmt.Errorf("restart smoke: server.states[parked] = %d, want 1 (states %v)", got, ps.Server.States)
	}
	fmt.Fprintf(out, "lccd restart-smoke: recovered: fb state=%s server states=%v\n", found, ps.Server.States)

	after, err := runQuery(base2)
	if err != nil {
		return err
	}
	if *after != *before {
		return fmt.Errorf("restart smoke: results drifted across crash recovery:\n  before %+v\n  after  %+v", *before, *after)
	}
	fmt.Fprintf(out, "lccd restart-smoke: post-restart bits identical: triangles=%d score_bits=%#x\n", after.Triangles, after.ScoreBits)
	fmt.Fprintln(out, "lccd restart-smoke: ok")
	return nil
}
