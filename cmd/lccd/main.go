// Command lccd is the persistent analytics daemon over the simulated
// engines: it keeps named graph instances loaded (internal/serve) and
// serves supervised LCC/Jaccard queries against them over a local
// HTTP+JSON API. Runs carry deadlines, cancellation unwinds the simulated
// ranks cleanly, a worker panic fails the run but never the process, and
// admission control bounds concurrent runs per instance.
//
// Usage:
//
//	lccd -addr 127.0.0.1:8090
//	lccd -smoke        # self-contained smoke run: load, query, drain, exit
//
// API (JSON bodies, JSON replies):
//
//	POST /v1/load   {"name":"fb","dataset":"fb-sim","ranks":4,"max_concurrent":2}
//	POST /v1/run    {"instance":"fb","engine":"lcc","method":"hybrid","caching":true,"timeout_ms":5000}
//	POST /v1/stop   {"instance":"fb"}
//	GET  /v1/ps
//	GET  /v1/health
//
// Typed serve errors map to statuses: 429 busy, 404 unknown instance,
// 410 exited, 503 loading/unhealthy, 504 deadline or cancellation, 500
// isolated panic. SIGTERM/SIGINT drains in-flight runs before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/part"
	"repro/internal/sched"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lccd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lccd", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", "127.0.0.1:8090", "listen address for the HTTP API")
		drain = fs.Duration("drain", 30*time.Second, "how long a shutdown waits for in-flight runs")
		smoke = fs.Bool("smoke", false, "start on an ephemeral port, load fb-sim, run one query, drain, exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := newServer()
	if *smoke {
		return srv.smoke(out, *drain)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lccd: serving on http://%s\n", ln.Addr())
	return srv.serve(ln, out, *drain)
}

// server binds the supervisor to the HTTP surface.
type server struct {
	sup  *serve.Supervisor
	http *http.Server
}

func newServer() *server {
	s := &server{sup: serve.NewSupervisor()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/load", s.handleLoad)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/stop", s.handleStop)
	mux.HandleFunc("GET /v1/ps", s.handlePS)
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.http = &http.Server{Handler: mux}
	return s
}

// serve runs the HTTP server until SIGTERM/SIGINT, then drains: the
// supervisor stops admitting runs and waits for in-flight ones, then the
// HTTP server shuts down.
func (s *server) serve(ln net.Listener, out io.Writer, drain time.Duration) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(stop)

	errCh := make(chan error, 1)
	go func() { errCh <- s.http.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		fmt.Fprintf(out, "lccd: %v, draining (up to %v)\n", sig, drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.sup.Shutdown(ctx); err != nil {
		fmt.Fprintf(out, "lccd: drain incomplete: %v\n", err)
	}
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "lccd: drained, bye")
	return nil
}

// loadRequest is the POST /v1/load body.
type loadRequest struct {
	Name          string `json:"name"`
	Dataset       string `json:"dataset"`
	Ranks         int    `json:"ranks"`
	Scheme        string `json:"scheme"`
	DelegateBytes int    `json:"delegate_bytes"`
	MaxConcurrent int    `json:"max_concurrent"`
	TimeoutMS     int64  `json:"default_timeout_ms"`
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" || req.Dataset == "" {
		writeError(w, http.StatusBadRequest, errors.New("load needs name and dataset"))
		return
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.sup.Load(req.Name, serve.Config{
		Dataset:        req.Dataset,
		Ranks:          req.Ranks,
		Scheme:         scheme,
		DelegateBytes:  req.DelegateBytes,
		MaxConcurrent:  req.MaxConcurrent,
		DefaultTimeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, inst.Info())
}

// runRequest is the POST /v1/run body. Distribution comes from the
// instance's snapshot; the query owns method, caching, workers and faults.
type runRequest struct {
	Instance     string `json:"instance"`
	Engine       string `json:"engine"`
	Method       string `json:"method"`
	Workers      int    `json:"workers"`
	Caching      bool   `json:"caching"`
	CacheOffsets int    `json:"cache_offsets_bytes"`
	CacheAdj     int    `json:"cache_adj_bytes"`
	DegreeScores bool   `json:"degree_scores"`
	NoOverlap    bool   `json:"no_overlap"`
	Faults       string `json:"faults"`
	TimeoutMS    int64  `json:"timeout_ms"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := fault.ParseSpec(req.Faults)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt := lcc.Options{
		Workers:      req.Workers,
		Method:       parseMethod(req.Method),
		DoubleBuffer: !req.NoOverlap,
		Caching:      req.Caching,
		DegreeScores: req.DegreeScores,
		Faults:       spec,
	}
	if req.Caching {
		opt.OffsetsCacheBytes = req.CacheOffsets
		opt.AdjCacheBytes = req.CacheAdj
		if opt.OffsetsCacheBytes == 0 {
			opt.OffsetsCacheBytes = 1 << 20
		}
		if opt.AdjCacheBytes == 0 {
			opt.AdjCacheBytes = 64 << 20
		}
	}
	q := serve.Query{
		Engine:  req.Engine,
		Options: opt,
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	}
	res, err := s.sup.Run(r.Context(), req.Instance, q)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleStop(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Instance string `json:"instance"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.sup.Stop(req.Instance); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"instance": req.Instance, "state": "exited"})
}

func (s *server) handlePS(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sup.List())
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	if !s.sup.Healthy() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"healthy":   status == http.StatusOK,
		"instances": s.sup.List(),
	})
}

// statusFor maps typed serve/sched errors to HTTP statuses.
func statusFor(err error) int {
	var pe *sched.PanicError
	switch {
	case errors.Is(err, serve.ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrUnknownInstance):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrInstanceExited):
		return http.StatusGone
	case errors.Is(err, serve.ErrNotReady), errors.Is(err, serve.ErrUnhealthy):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrAlreadyRunning):
		return http.StatusConflict
	case errors.Is(err, sched.ErrRunCanceled):
		return http.StatusGatewayTimeout
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func parseScheme(s string) (part.Scheme, error) {
	switch s {
	case "", "block":
		return part.Block, nil
	case "cyclic":
		return part.Cyclic, nil
	case "blockarcs", "block-arcs":
		return part.BlockArcs, nil
	default:
		return part.Block, fmt.Errorf("unknown scheme %q", s)
	}
}

func parseMethod(s string) intersect.Method {
	switch s {
	case "ssi":
		return intersect.MethodSSI
	case "binary":
		return intersect.MethodBinary
	case "hash":
		return intersect.MethodHash
	default:
		return intersect.MethodHybrid
	}
}

// smoke exercises the full service loop in one process — the make
// serve-smoke / CI step: serve on an ephemeral port, load a graph over
// HTTP, run one query, list instances, then drain and exit. Any failure
// is fatal.
func (s *server) smoke(out io.Writer, drain time.Duration) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = s.http.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	post := func(path string, body string, want int) (map[string]any, error) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return nil, err
		}
		if resp.StatusCode != want {
			return m, fmt.Errorf("%s: status %d (want %d): %v", path, resp.StatusCode, want, m)
		}
		return m, nil
	}

	if _, err := post("/v1/load", `{"name":"fb","dataset":"fb-sim","ranks":4,"max_concurrent":2}`, http.StatusOK); err != nil {
		return err
	}
	res, err := post("/v1/run", `{"instance":"fb","method":"hybrid","timeout_ms":60000}`, http.StatusOK)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lccd smoke: run ok: triangles=%v sim_time_ns=%v\n", res["triangles"], res["sim_time_ns"])
	if res["triangles"] == nil {
		return errors.New("smoke run returned no triangle count")
	}
	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health: status %d", resp.StatusCode)
	}
	if _, err := post("/v1/stop", `{"instance":"fb"}`, http.StatusOK); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.sup.Shutdown(ctx); err != nil {
		return err
	}
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "lccd smoke: ok")
	return nil
}
