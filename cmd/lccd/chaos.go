package main

// The daemon chaos harness (-chaos-smoke): a seeded, randomized campaign
// against a REAL daemon — this binary re-exec'd, serving real HTTP, with
// a real state directory and a real graph disk cache — rather than an
// in-process supervisor. Each cycle draws one hazard from the schedule:
//
//   - kill-restart: SIGKILL (no drain, no goodbye) and reboot from the
//     state dir; the fleet must recover and the golden query must return
//     bit-identical results through the transparent reload.
//   - manifest corruption: flip a random byte in a random .lcm file,
//     then kill-restart; the daemon must boot (corrupt manifests are
//     skipped loudly, never fatal) and the instance is re-loaded if the
//     corrupted manifest was its only record.
//   - cache corruption: flip a random byte in a random .lcg graph-cache
//     file, then kill-restart; the rebuild must treat the damaged file
//     as a cache miss and regenerate, still producing golden bits.
//   - storm: concurrent golden queries, tiny-deadline queries, loads and
//     stops of a second instance, and ps polls, all at once; afterwards
//     the instance's Served counter must have moved by exactly the
//     number of 200 replies observed (no lost or duplicated runs).
//   - wedge-stall: a query carrying a wedge fault parks one rank
//     forever; the run watchdog must force-cancel it with a typed 500
//     "stalled", and stop + reload must restore golden service.
//
// Standing invariants, checked every cycle: the daemon answers /v1/ps;
// every successful run is bit-identical to the first golden reading; and
// every rejection carries a machine-readable nonempty "reason" — chaos
// may degrade service, never un-type it.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// chaosRNG is a splitmix64 stream: the same seed always replays the same
// campaign, which is what makes a chaos failure debuggable.
type chaosRNG struct{ s uint64 }

func (r *chaosRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	x := r.s
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (r *chaosRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// chaosHarness owns one campaign: the re-exec'd daemon, its state and
// cache directories, and the golden reading every recovery is checked
// against.
type chaosHarness struct {
	out      io.Writer
	exe      string
	stateDir string
	cacheDir string
	daemon   *exec.Cmd
	base     string
	golden   *smokeResult
	client   *http.Client
}

func runChaosSmoke(out io.Writer, cycles int, seed uint64) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	stateDir, err := os.MkdirTemp("", "lccd-chaos-state-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)
	cacheDir, err := os.MkdirTemp("", "lccd-chaos-cache-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	h := &chaosHarness{
		out: out, exe: exe, stateDir: stateDir, cacheDir: cacheDir,
		client: &http.Client{Timeout: 3 * time.Minute},
	}
	defer h.stopDaemon()

	if err := h.boot(); err != nil {
		return err
	}
	if err := h.loadFB(); err != nil {
		return err
	}
	golden, err := h.runGolden()
	if err != nil {
		return fmt.Errorf("chaos: golden reading: %w", err)
	}
	h.golden = golden
	fmt.Fprintf(out, "lccd chaos: golden: triangles=%d score_bits=%#x\n", golden.Triangles, golden.ScoreBits)

	rng := &chaosRNG{s: seed}
	for cycle := 0; cycle < cycles; cycle++ {
		var err error
		var action string
		switch rng.intn(5) {
		case 0:
			action, err = "kill-restart", h.cycleKillRestart()
		case 1:
			action, err = "manifest-corrupt", h.cycleCorrupt(rng, h.stateDir, ".lcm")
		case 2:
			action, err = "cache-corrupt", h.cycleCorrupt(rng, h.cacheDir, ".lcg")
		case 3:
			action, err = "storm", h.cycleStorm(rng)
		case 4:
			action, err = "wedge-stall", h.cycleWedgeStall()
		}
		if err != nil {
			return fmt.Errorf("chaos cycle %d (%s, seed %d): %w", cycle, action, seed, err)
		}
		if _, err := h.ps(); err != nil {
			return fmt.Errorf("chaos cycle %d (%s): daemon unresponsive after cycle: %w", cycle, action, err)
		}
		fmt.Fprintf(out, "lccd chaos: cycle %d/%d ok (%s)\n", cycle+1, cycles, action)
	}

	// Final verification and a clean goodbye.
	res, err := h.runGolden()
	if err != nil {
		return fmt.Errorf("chaos: final golden query: %w", err)
	}
	if *res != *h.golden {
		return fmt.Errorf("chaos: final bits drifted:\n  golden %+v\n  final  %+v", *h.golden, *res)
	}
	fmt.Fprintf(out, "lccd chaos: %d cycles, zero invariant violations\n", cycles)
	return nil
}

// boot starts (or restarts) the daemon on an ephemeral port with the
// campaign's state dir, graph cache, run cap and a fast background
// scrubber, and waits for its address file.
func (h *chaosHarness) boot() error {
	addrFile := filepath.Join(h.stateDir, "lccd.addr")
	_ = os.Remove(addrFile)
	cmd := exec.Command(h.exe,
		"-addr", "127.0.0.1:0",
		"-state-dir", h.stateDir,
		"-run-cap", "8",
		"-scrub-period", "100ms",
	)
	cmd.Env = append(os.Environ(), "LCC_GRAPH_CACHE="+h.cacheDir)
	cmd.Stdout, cmd.Stderr = h.out, h.out
	if err := cmd.Start(); err != nil {
		return err
	}
	for i := 0; i < 400; i++ {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			h.daemon = cmd
			h.base = "http://" + strings.TrimSpace(string(raw))
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	return errors.New("chaos: daemon did not write its address file")
}

// kill SIGKILLs the daemon — the crash-stop case, no drain.
func (h *chaosHarness) kill() {
	if h.daemon != nil {
		_ = h.daemon.Process.Kill()
		_ = h.daemon.Wait()
		h.daemon = nil
	}
}

// stopDaemon is the graceful teardown at campaign end.
func (h *chaosHarness) stopDaemon() {
	if h.daemon != nil {
		_ = h.daemon.Process.Signal(syscall.SIGTERM)
		_ = h.daemon.Wait()
		h.daemon = nil
	}
}

// post sends one JSON request and decodes the reply, whatever its
// status; the caller asserts on status and body.
func (h *chaosHarness) post(path, body string) (int, map[string]any, error) {
	resp, err := h.client.Post(h.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return resp.StatusCode, nil, fmt.Errorf("%s: status %d: undecodable body: %w", path, resp.StatusCode, err)
	}
	return resp.StatusCode, m, nil
}

// checkTyped enforces the every-rejection-is-typed invariant: any
// non-2xx reply must carry a nonempty machine-readable reason.
func checkTyped(path string, status int, m map[string]any) error {
	if status >= 200 && status < 300 {
		return nil
	}
	reason, _ := m["reason"].(string)
	if reason == "" {
		return fmt.Errorf("%s: untyped rejection: status %d body %v", path, status, m)
	}
	return nil
}

// loadFB loads the golden instance: fb-sim over 4 ranks with queueing
// and a stall watchdog, the same shape the pinned tests use. A 409
// (already running) is fine on re-load paths.
func (h *chaosHarness) loadFB() error {
	status, m, err := h.post("/v1/load",
		`{"name":"fb","dataset":"fb-sim","ranks":4,"max_concurrent":2,"queue_depth":4,"stall_timeout_ms":2000}`)
	if err != nil {
		return err
	}
	if status != http.StatusOK && status != http.StatusConflict {
		return fmt.Errorf("load fb: status %d: %v", status, m)
	}
	return nil
}

// runGolden runs the pinned query and checks it against the campaign
// golden (when one is recorded yet).
func (h *chaosHarness) runGolden() (*smokeResult, error) {
	resp, err := h.client.Post(h.base+"/v1/run", "application/json",
		strings.NewReader(`{"instance":"fb","method":"hybrid","timeout_ms":120000}`))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("golden run: status %d: %s", resp.StatusCode, raw)
	}
	var res smokeResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, err
	}
	if h.golden != nil && res != *h.golden {
		return nil, fmt.Errorf("bits drifted from golden:\n  golden %+v\n  got    %+v", *h.golden, res)
	}
	return &res, nil
}

// ps fetches and decodes /v1/ps.
func (h *chaosHarness) ps() (*psView, error) {
	resp, err := h.client.Get(h.base + "/v1/ps")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var ps psView
	if err := json.NewDecoder(resp.Body).Decode(&ps); err != nil {
		return nil, err
	}
	return &ps, nil
}

// recoverFB makes the golden instance serveable again after a restart:
// if the manifest survived, fb is already recovered (parked) and the
// load 409s; if the manifest was the corruption victim, fb is gone and
// the load recreates it. Either way the golden query must then pin.
func (h *chaosHarness) recoverFB() error {
	if err := h.loadFB(); err != nil {
		return err
	}
	_, err := h.runGolden()
	return err
}

// cycleKillRestart is the plain crash-stop drill.
func (h *chaosHarness) cycleKillRestart() error {
	h.kill()
	if err := h.boot(); err != nil {
		return err
	}
	return h.recoverFB()
}

// cycleCorrupt flips one random byte in one random file with the given
// extension, then kill-restarts: the daemon must boot regardless, and
// golden service must be restored (skip-loudly for manifests, cache-miss
// regeneration for graph cache files).
func (h *chaosHarness) cycleCorrupt(rng *chaosRNG, dir, ext string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var victims []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ext) {
			victims = append(victims, filepath.Join(dir, e.Name()))
		}
	}
	if len(victims) > 0 {
		victim := victims[rng.intn(len(victims))]
		raw, err := os.ReadFile(victim)
		if err != nil {
			return err
		}
		if len(raw) > 0 {
			raw[rng.intn(len(raw))] ^= 1 << uint(rng.intn(8))
			if err := os.WriteFile(victim, raw, 0o644); err != nil {
				return err
			}
		}
	}
	return h.cycleKillRestart()
}

// cycleWedgeStall sends a run whose fault schedule parks rank 0 forever
// at its 40th issue point. The watchdog must force-cancel it as a typed
// 500 "stalled"; the instance is then unhealthy by design, and stop +
// re-load must restore golden service.
func (h *chaosHarness) cycleWedgeStall() error {
	status, m, err := h.post("/v1/run",
		`{"instance":"fb","method":"hybrid","faults":"wedge=0:40","timeout_ms":120000}`)
	if err != nil {
		return err
	}
	if status != http.StatusInternalServerError {
		return fmt.Errorf("wedged run: status %d (want 500): %v", status, m)
	}
	if reason, _ := m["reason"].(string); reason != "stalled" {
		return fmt.Errorf("wedged run: reason %q (want stalled): %v", reason, m)
	}
	// The stall flipped fb unhealthy; recovery over the API is stop+load.
	if status, m, err := h.post("/v1/stop", `{"instance":"fb"}`); err != nil {
		return err
	} else if status != http.StatusOK {
		return fmt.Errorf("stop after stall: status %d: %v", status, m)
	}
	return h.recoverFB()
}

// cycleStorm fires concurrent traffic — golden queries, tiny-deadline
// queries, loads/stops of a second instance, ps polls — and then settles
// the books: every reply typed, every 200 bit-identical, and fb's Served
// counter moved by exactly the number of 200 run replies (no lost or
// duplicated runs).
func (h *chaosHarness) cycleStorm(rng *chaosRNG) error {
	before, err := h.ps()
	if err != nil {
		return err
	}
	servedBefore := int64(-1)
	for _, inst := range before.Instances {
		if inst.Name == "fb" {
			servedBefore = inst.Counters.Served
		}
	}
	if servedBefore < 0 {
		return errors.New("storm: fb missing from ps")
	}

	const shots = 10
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ok200    int64
		failures []error
	)
	fail := func(err error) {
		mu.Lock()
		failures = append(failures, err)
		mu.Unlock()
	}
	for i := 0; i < shots; i++ {
		kind := rng.intn(4)
		wg.Add(1)
		go func(kind int) {
			defer wg.Done()
			switch kind {
			case 0: // golden query: 200 with golden bits, or typed overflow
				resp, err := h.client.Post(h.base+"/v1/run", "application/json",
					strings.NewReader(`{"instance":"fb","method":"hybrid","timeout_ms":120000}`))
				if err != nil {
					fail(err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					var res smokeResult
					if err := json.Unmarshal(raw, &res); err != nil {
						fail(fmt.Errorf("storm run decode: %w", err))
						return
					}
					if res != *h.golden {
						fail(fmt.Errorf("storm run bits drifted: %+v", res))
						return
					}
					mu.Lock()
					ok200++
					mu.Unlock()
					return
				}
				var m map[string]any
				_ = json.Unmarshal(raw, &m)
				if err := checkTyped("/v1/run", resp.StatusCode, m); err != nil {
					fail(err)
				}
			case 1: // tiny deadline: 200 (if it squeaked through) or typed 4xx/5xx
				status, m, err := h.post("/v1/run",
					`{"instance":"fb","method":"hybrid","timeout_ms":1}`)
				if err != nil {
					fail(err)
					return
				}
				if status == http.StatusOK {
					mu.Lock()
					ok200++
					mu.Unlock()
					return
				}
				if err := checkTyped("/v1/run", status, m); err != nil {
					fail(err)
				}
			case 2: // load/stop churn on a second instance
				status, m, err := h.post("/v1/load",
					`{"name":"fb2","dataset":"fb-sim","ranks":2,"max_concurrent":1,"stall_timeout_ms":2000}`)
				if err != nil {
					fail(err)
					return
				}
				if err := checkTyped("/v1/load", status, m); err != nil {
					fail(err)
					return
				}
				status, m, err = h.post("/v1/stop", `{"instance":"fb2"}`)
				if err != nil {
					fail(err)
					return
				}
				if err := checkTyped("/v1/stop", status, m); err != nil {
					fail(err)
				}
			case 3: // observer
				if _, err := h.ps(); err != nil {
					fail(err)
				}
			}
		}(kind)
	}
	wg.Wait()
	if len(failures) > 0 {
		return errors.Join(failures...)
	}

	after, err := h.ps()
	if err != nil {
		return err
	}
	servedAfter := int64(-1)
	for _, inst := range after.Instances {
		if inst.Name == "fb" {
			servedAfter = inst.Counters.Served
		}
	}
	if got := servedAfter - servedBefore; got != ok200 {
		return fmt.Errorf("storm: served counter moved %d, but %d runs returned 200 — lost or duplicated runs", got, ok200)
	}
	return nil
}
