// Command figures regenerates the tables and figures of the paper's
// evaluation (§IV). With no arguments it lists the available experiments;
// pass experiment ids (e.g. "fig9 table3") or "all" to run them. Output is
// aligned text; every table names the paper result it should be compared
// against, and EXPERIMENTS.md records a full paper-vs-measured pass.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Println("usage: figures <experiment-id>... | all")
		fmt.Println("\navailable experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		return
	}
	var todo []experiments.NamedExperiment
	if len(args) == 1 && args[0] == "all" {
		todo = experiments.All()
	} else {
		for _, id := range args {
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "figures: unknown experiment %q (run with no args for the list)\n", id)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}
	for _, e := range todo {
		start := time.Now()
		table := e.Make()
		table.Render(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
