// Command scalebench measures the storage plane at scale: it materializes
// one of the large scale-series datasets (internal/gen, BENCH_MODE=scale)
// through the disk cache and records the quantities the perf trajectory
// tracks for graphs two orders of magnitude past the golden suite — edge
// count, bytes on disk, compression ratio of the varint/delta adjacency
// stream against the plain CSR image, checksummed load wall-time, and the
// process's resident-set peak.
//
// The record lands in the same BENCH_<n>.json container as the micro and
// serve series, tagged "mode":"scale"; benchdiff pairs records within a
// mode, so scale points diff against earlier scale points and never
// against substrate micro-benchmarks.
//
// The first run against an empty cache directory generates the dataset
// (minutes for half a billion edges) and persists it; subsequent runs are
// a single checksummed binary read, which is the load time a scale record
// is meant to pin. Generation time, when it happened, is reported
// separately and never folded into load_ns.
//
// Usage:
//
//	scalebench [-dataset rmat-s21-ef256] [-cache DIR] [-out BENCH_7.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

type scaleRecord struct {
	Date       string      `json:"date"`
	GoMaxProcs int         `json:"go_max_procs"`
	CPUModel   string      `json:"cpu_model"`
	Faults     string      `json:"faults"`
	Mode       string      `json:"mode"`
	Scale      scaleDetail `json:"scale"`
	Benchmarks []benchRow  `json:"benchmarks"`
}

type scaleDetail struct {
	Dataset            string  `json:"dataset"`
	Vertices           int     `json:"vertices"`
	Edges              int     `json:"edges"`
	Arcs               int     `json:"arcs"`
	PlainAdjBytes      int64   `json:"plain_adj_bytes"`
	CompressedAdjBytes int64   `json:"compressed_adj_bytes"`
	CompressionRatio   float64 `json:"compression_ratio"`
	BytesOnDisk        int64   `json:"bytes_on_disk"`
	LoadNS             int64   `json:"load_ns"`
	GenNS              int64   `json:"gen_ns,omitempty"`
	PeakRSSBytes       int64   `json:"peak_rss_bytes"`
}

type benchRow struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

func main() {
	dataset := flag.String("dataset", "rmat-s21-ef256", "scale-series dataset name (gen.ScaleNames)")
	cache := flag.String("cache", "", "graph cache directory (default $LCC_GRAPH_CACHE, else .graph-cache)")
	out := flag.String("out", "", "output record path (default stdout)")
	flag.Parse()

	dir := *cache
	if dir == "" {
		dir = os.Getenv(gen.CacheDirEnv)
	}
	if dir == "" {
		dir = ".graph-cache"
	}
	gen.SetCacheDir(dir)

	path := gen.CachePath(*dataset)
	if path == "" {
		fatalf("cache path for %q is empty (cache dir %q)", *dataset, dir)
	}

	var genNS int64
	if _, err := os.Stat(path); err != nil {
		fmt.Fprintf(os.Stderr, "scalebench: generating %s (first run; this takes a while)\n", *dataset)
		t0 := time.Now()
		if _, err := gen.Load(*dataset); err != nil {
			fatalf("generate %s: %v", *dataset, err)
		}
		genNS = time.Since(t0).Nanoseconds()
		if _, err := os.Stat(path); err != nil {
			fatalf("dataset generated but not persisted to %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "scalebench: generated and persisted in %s\n", time.Duration(genNS))
	}

	info, err := os.Stat(path)
	if err != nil {
		fatalf("stat %s: %v", path, err)
	}

	// The load measurement: one checksummed, representation-preserving
	// binary read — the path every warm scale run takes.
	t0 := time.Now()
	f, err := os.Open(path)
	if err != nil {
		fatalf("open %s: %v", path, err)
	}
	st, err := graph.ReadBinaryStore(f)
	f.Close()
	if err != nil {
		fatalf("read %s: %v", path, err)
	}
	loadNS := time.Since(t0).Nanoseconds()

	comp, ok := st.(*graph.CompressedCSR)
	if !ok {
		fatalf("cache file %s loaded as %s, want the compressed representation", path, st.ReprName())
	}

	det := scaleDetail{
		Dataset:            *dataset,
		Vertices:           comp.NumVertices(),
		Edges:              comp.NumEdges(),
		Arcs:               comp.NumArcs(),
		PlainAdjBytes:      4 * int64(comp.NumArcs()),
		CompressedAdjBytes: int64(comp.Adjacency().DataBytes()),
		BytesOnDisk:        info.Size(),
		LoadNS:             loadNS,
		GenNS:              genNS,
		PeakRSSBytes:       peakRSS(),
	}
	det.CompressionRatio = comp.CompressionRatio()

	rec := scaleRecord{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Faults:     "off",
		Mode:       "scale",
		Scale:      det,
		Benchmarks: []benchRow{
			{Name: "ScaleBinaryLoad", Iters: 1, NsPerOp: float64(loadNS), BPerOp: float64(info.Size()), AllocsOp: 0},
		},
	}

	buf, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		fatalf("marshal record: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}

	fmt.Fprintf(os.Stderr,
		"scalebench: %s: %d vertices, %d edges, %.1f MB on disk, adjacency %.1f%% of plain, load %s, peak RSS %.1f GB\n",
		*dataset, det.Vertices, det.Edges, float64(det.BytesOnDisk)/1e6,
		100*det.CompressionRatio, time.Duration(det.LoadNS), float64(det.PeakRSSBytes)/1e9)
}

// peakRSS reads the process's high-water resident set (VmHWM) in bytes;
// 0 when the proc interface is unavailable (non-Linux hosts).
func peakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if i := strings.IndexByte(name, ':'); i >= 0 {
				return strings.TrimSpace(name[i+1:])
			}
		}
	}
	return "unknown"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalebench: "+format+"\n", args...)
	os.Exit(1)
}
