// Command compare runs every triangle-counting engine in the repository on
// one graph and one rank count, verifies that they all agree on the
// triangle total, and prints a side-by-side comparison: the paper's
// asynchronous RMA engine (cached and non-cached), its push-mode (§VI ii)
// and replicated-groups 1.5D (§VI i) variants, the TriC and TriC-Buffered
// baselines (§IV-B), the DistTC shadow-edge baseline (§I), and the
// single-node shared-memory, forward and algebraic references.
//
// Usage:
//
//	compare -dataset rmat-s14-ef16 -ranks 16
//	compare -dataset lj-sim -ranks 8 -skip tric
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/disttc"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/spmat"
	"repro/internal/tric"

	"repro/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "rmat-s14-ef16", "registered dataset name (see graphgen -list)")
		ranks   = flag.Int("ranks", 8, "number of simulated computing nodes")
		skip    = flag.String("skip", "", "comma-separated engines to skip: tric,tricbuf,disttc,algebraic,forward,push,replicated,2d")
	)
	flag.Parse()

	skipped := map[string]bool{}
	for _, s := range strings.Split(*skip, ",") {
		if s = strings.TrimSpace(s); s != "" {
			skipped[s] = true
		}
	}

	g, err := gen.Load(*dataset)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s: |V|=%d |E|=%d (%v), %d ranks\n\n",
		*dataset, g.NumVertices(), g.NumEdges(), g.Kind(), *ranks)

	type row struct {
		name    string
		simMS   float64 // simulated distributed time; 0 for single-node refs
		notes   string
		tricnt  int64
		checked bool
	}
	var rows []row

	shared := lcc.SharedLCC(g, intersect.MethodHybrid)
	want := shared.Triangles
	rows = append(rows, row{name: "shared (hybrid)", tricnt: shared.Triangles, checked: true,
		notes: fmt.Sprintf("%d intersection ops", shared.Ops)})

	if g.Kind() == graph.Undirected && !skipped["forward"] {
		fwd, err := lcc.ForwardLCC(g)
		if err != nil {
			fatal(err)
		}
		rows = append(rows, row{name: "forward (Schank–Wagner)", tricnt: fwd.Triangles,
			checked: true, notes: fmt.Sprintf("%d merge ops", fwd.Ops)})
	}
	if !skipped["algebraic"] {
		var alg *spmat.TriangleCountResult
		var err error
		if g.Kind() == graph.Undirected {
			alg, err = spmat.CountLU(g)
		} else {
			alg, err = spmat.CountAAA(g)
		}
		if err != nil {
			fatal(err)
		}
		rows = append(rows, row{name: "algebraic (LU∘A)", tricnt: alg.Triangles,
			checked: true, notes: fmt.Sprintf("%d flops", alg.Flops)})
	}

	async, err := lcc.Run(g, lcc.Options{Ranks: *ranks, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		fatal(err)
	}
	rows = append(rows, row{name: "async RMA (non-cached)", simMS: async.SimTime / 1e6,
		tricnt: async.Triangles, checked: true,
		notes: fmt.Sprintf("%.0f%% reads remote", 100*async.RemoteReadFraction())})

	cachedOpt := lcc.Options{
		Ranks: *ranks, Method: intersect.MethodHybrid, DoubleBuffer: true,
		Caching: true, DegreeScores: true,
		OffsetsCacheBytes: 16 * (2 * g.NumVertices() / 5),
		AdjCacheBytes:     64 << 20,
	}
	cached, err := lcc.Run(g, cachedOpt)
	if err != nil {
		fatal(err)
	}
	rows = append(rows, row{name: "async RMA (cached, degree scores)", simMS: cached.SimTime / 1e6,
		tricnt: cached.Triangles, checked: true,
		notes: fmt.Sprintf("%.0f%% hit rate", 100*cached.HitRate())})

	if g.Kind() == graph.Undirected && !skipped["push"] {
		pushed, err := lcc.RunPush(g, lcc.PushOptions{
			Options:     lcc.Options{Ranks: *ranks, Method: intersect.MethodHybrid, DoubleBuffer: true},
			Aggregation: lcc.PushBatched,
		})
		if err != nil {
			fatal(err)
		}
		rows = append(rows, row{name: "async RMA push (batched)", simMS: pushed.SimTime / 1e6,
			tricnt: pushed.Triangles, checked: true,
			notes: fmt.Sprintf("%d batched accumulates", pushed.AggregateRMA().Puts)})
	}

	if *ranks%2 == 0 && !skipped["replicated"] {
		rep, err := lcc.RunReplicated(g, lcc.ReplicatedOptions{
			Options:     lcc.Options{Ranks: *ranks, Method: intersect.MethodHybrid, DoubleBuffer: true},
			Replication: 2,
		})
		if err != nil {
			fatal(err)
		}
		rows = append(rows, row{name: "async RMA 1.5D (c=2)", simMS: rep.SimTime / 1e6,
			tricnt: rep.Triangles, checked: true,
			notes: fmt.Sprintf("%.0f%% reads remote", 100*rep.RemoteReadFraction())})
	}

	if !skipped["tric"] {
		tr := tric.MustRun(g, tric.Options{Ranks: *ranks, Method: intersect.MethodHybrid})
		rows = append(rows, row{name: "TriC", simMS: tr.SimTime / 1e6, tricnt: tr.Triangles,
			checked: true, notes: fmt.Sprintf("%d supersteps", tr.Supersteps)})
	}
	if !skipped["tricbuf"] {
		tb := tric.MustRun(g, tric.Options{Ranks: *ranks, Method: intersect.MethodHybrid,
			Buffered: true, BufferBytes: 256 << 10})
		rows = append(rows, row{name: "TriC-Buffered", simMS: tb.SimTime / 1e6, tricnt: tb.Triangles,
			checked: true, notes: fmt.Sprintf("%d supersteps", tb.Supersteps)})
	}
	if q := isqrt(*ranks); g.Kind() == graph.Undirected && q*q == *ranks && !skipped["2d"] {
		td := grid.MustRun(g, grid.Options{Ranks: *ranks})
		rows = append(rows, row{name: "async RMA 2D (future work i)", simMS: td.SimTime / 1e6,
			tricnt: td.Triangles, checked: true,
			notes: fmt.Sprintf("%.2f MB/rank max, %d block gets", float64(td.RemoteBytesMax)/1e6, td.BlockFetches)})
	}
	if g.Kind() == graph.Undirected && !skipped["disttc"] {
		dt := disttc.MustRun(g, disttc.Options{Ranks: *ranks})
		rows = append(rows, row{name: "DistTC", simMS: dt.SimTime / 1e6, tricnt: dt.Triangles,
			checked: true,
			notes: fmt.Sprintf("%.0f%% precompute, %.1fx replication",
				100*dt.PrecomputeTime/dt.SimTime, dt.ReplicationFactor)})
	}

	fmt.Printf("%-34s  %12s  %12s  %s\n", "engine", "sim time", "triangles", "notes")
	fmt.Println(strings.Repeat("-", 90))
	ok := true
	for _, r := range rows {
		sim := "single-node"
		if r.simMS > 0 {
			sim = fmt.Sprintf("%.2f ms", r.simMS)
		}
		mark := ""
		if r.checked && r.tricnt != want {
			mark = "  <-- DISAGREES"
			ok = false
		}
		fmt.Printf("%-34s  %12s  %12d  %s%s\n", r.name, sim, r.tricnt, r.notes, mark)
	}
	fmt.Println(strings.Repeat("-", 90))
	if !ok {
		fatal(fmt.Errorf("engines disagree on the triangle count"))
	}
	fmt.Printf("all engines agree: %d triangles ✓\n", want)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}

// isqrt returns ⌊√x⌋ for small non-negative x.
func isqrt(x int) int {
	q := 0
	for (q+1)*(q+1) <= x {
		q++
	}
	return q
}
